#pragma once
// The sharded measurement pipeline.
//
// The post-hoc probes (skew_series, check_validity) used to call
// Simulator::local_time once per (process, sample) pair — n segment/CORR
// lookups per sample, rescanned per sample, a cost that rivals the engine
// itself on large-n windows (ROADMAP).  This pipeline inverts the loop:
// every clock's segment list and CORR log is walked exactly ONCE per
// window, evaluating the whole (ascending) sample batch against cursors
// (clk::PhysicalClock::Walker / sim::CorrLog::Walker), and the per-clock
// rows shard across threads for large grids.  Values are bit-identical to
// the per-sample scan — the regression suite in tests/topology_test.cpp
// holds it to that, and skew_at() remains the reference scan.

#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace wlsync::analysis {

/// Auto-parallel break-even shared by the sharded probes (sample_local_times
/// here, the pair scan in analysis/gradient.cpp): below this many scalar
/// evaluations a serial pass wins, and trials running under an outer
/// ParallelRunner sweep should not spawn inner pools for small windows.
inline constexpr std::size_t kMeasureShardThreshold = std::size_t{1} << 16;

/// The historical sample grids, reproduced accumulation-exactly (t += dt
/// floating-point walk) so rewired callers measure at the very same
/// instants as before.

/// {t0, t0+dt, ...} while t < t1, then exactly t1 — skew_series' grid.
[[nodiscard]] std::vector<double> sample_times_with_endpoint(double t0,
                                                             double t1,
                                                             double dt);

/// {t0, t0+dt, ...} while t <= t1 — check_validity's grid.
[[nodiscard]] std::vector<double> sample_times_closed(double t0, double t1,
                                                      double dt);

/// Local times L_p(t) over a sample grid: row r holds ids[r]'s local time
/// at every grid instant.
struct LocalTimeGrid {
  std::vector<double> times;   ///< ascending sample instants (cols entries)
  std::vector<double> values;  ///< row-major rows x cols
  std::size_t rows = 0;
  std::size_t cols = 0;

  [[nodiscard]] double at(std::size_t row, std::size_t col) const {
    return values[row * cols + col];
  }
};

/// Walks each id's clock + CORR history once over `times` (which must be
/// non-decreasing).  threads = 0 auto-shards rows across the hardware for
/// large grids and stays serial for small ones; any thread count produces
/// identical values (each row is an independent single-writer pass).
[[nodiscard]] LocalTimeGrid sample_local_times(const sim::Simulator& sim,
                                               const std::vector<std::int32_t>& ids,
                                               std::vector<double> times,
                                               int threads = 0);

/// Aggregated Section 9.3 ingress accounting for a finished run: the
/// per-process sim::NicStats summed, plus the worst single process on each
/// axis.  All zeros when the NIC model is off; every field is a
/// deterministic function of the run (results_identical compares them).
struct NicSummary {
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  std::uint64_t service_events = 0;     ///< service-loop arms (re-arm count)
  std::uint64_t worst_dropped = 0;      ///< max dropped at one process
  std::size_t peak_queue = 0;           ///< deepest ingress queue anywhere
  std::size_t max_burst = 0;            ///< largest same-instant burst

  /// Fraction of arrivals lost to overflow.
  [[nodiscard]] double drop_rate() const noexcept {
    return arrivals == 0
               ? 0.0
               : static_cast<double>(dropped) / static_cast<double>(arrivals);
  }
};

[[nodiscard]] NicSummary summarize_nic(const sim::Simulator& sim);

[[nodiscard]] bool nic_summaries_identical(const NicSummary& a,
                                           const NicSummary& b);

}  // namespace wlsync::analysis
