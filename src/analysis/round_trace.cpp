#include "analysis/round_trace.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wlsync::analysis {

void RoundTrace::on_annotation(std::int32_t pid, double time,
                               const proc::Annotation& annotation) {
  const RoundEvent event{pid, annotation.round, time, annotation.value,
                         annotation.value2};
  switch (annotation.type) {
    case proc::Annotation::Type::kRoundBegin:
      begins_.push_back(event);
      begin_index_[begin_key(annotation.round, pid)] = time;
      break;
    case proc::Annotation::Type::kUpdate:
      updates_.push_back(event);
      break;
    case proc::Annotation::Type::kJoined:
      joins_.push_back(event);
      break;
    case proc::Annotation::Type::kCustom:
      break;
  }
}

std::vector<double> RoundTrace::begin_times(
    std::int32_t round, const std::vector<std::int32_t>& ids) const {
  std::vector<double> times;
  times.reserve(ids.size());
  for (std::int32_t id : ids) {
    const auto it = begin_index_.find(begin_key(round, id));
    if (it == begin_index_.end()) return {};
    times.push_back(it->second);
  }
  return times;
}

double RoundTrace::begin_spread(std::int32_t round,
                                const std::vector<std::int32_t>& ids) const {
  const auto times = begin_times(round, ids);
  if (times.empty()) return std::numeric_limits<double>::quiet_NaN();
  const auto [lo, hi] = std::minmax_element(times.begin(), times.end());
  return *hi - *lo;
}

std::int32_t RoundTrace::last_complete_round(
    const std::vector<std::int32_t>& ids) const {
  std::int32_t round = -1;
  while (!begin_times(round + 1, ids).empty()) ++round;
  return round;
}

double RoundTrace::max_abs_adjustment(const std::vector<std::int32_t>& ids,
                                      std::int32_t from_round) const {
  double worst = 0.0;
  for (const RoundEvent& update : updates_) {
    if (update.round < from_round) continue;
    if (std::find(ids.begin(), ids.end(), update.pid) == ids.end()) continue;
    worst = std::max(worst, std::abs(update.value));
  }
  return worst;
}

void RoundTrace::absorb(const RoundTrace& other) {
  const auto merge_into = [](std::vector<RoundEvent>& dst,
                             const std::vector<RoundEvent>& src) {
    if (src.empty()) return;
    const auto mid = static_cast<std::ptrdiff_t>(dst.size());
    dst.insert(dst.end(), src.begin(), src.end());
    std::inplace_merge(dst.begin(), dst.begin() + mid, dst.end(),
                       [](const RoundEvent& a, const RoundEvent& b) {
                         if (a.real_time != b.real_time) {
                           return a.real_time < b.real_time;
                         }
                         return a.pid < b.pid;
                       });
  };
  merge_into(begins_, other.begins_);
  merge_into(updates_, other.updates_);
  merge_into(joins_, other.joins_);
  begin_index_.reserve(begin_index_.size() + other.begins_.size());
  for (const RoundEvent& begin : other.begins_) {
    begin_index_[begin_key(begin.round, begin.pid)] = begin.real_time;
  }
}

void RoundTrace::absorb_all(const std::vector<RoundTrace>& others) {
  const auto before = [](const RoundEvent& a, const RoundEvent& b) {
    if (a.real_time != b.real_time) return a.real_time < b.real_time;
    return a.pid < b.pid;
  };
  // Linear k-way merge: each step scans the (small) source set for the
  // minimal head.  k is the shard count, so the scan is cheaper than the
  // buffer churn of repeated inplace_merge calls.
  const auto merge_all = [&](std::vector<RoundEvent> RoundTrace::*member) {
    std::vector<const std::vector<RoundEvent>*> sources;
    sources.push_back(&(this->*member));
    std::size_t total = (this->*member).size();
    for (const RoundTrace& other : others) {
      const std::vector<RoundEvent>& src = other.*member;
      if (src.empty()) continue;
      sources.push_back(&src);
      total += src.size();
    }
    if (sources.size() == 1) return;
    std::vector<RoundEvent> merged;
    merged.reserve(total);
    std::vector<std::size_t> cursor(sources.size(), 0);
    while (merged.size() < total) {
      std::size_t best = sources.size();
      for (std::size_t s = 0; s < sources.size(); ++s) {
        if (cursor[s] >= sources[s]->size()) continue;
        if (best == sources.size() ||
            before((*sources[s])[cursor[s]], (*sources[best])[cursor[best]])) {
          best = s;
        }
      }
      merged.push_back((*sources[best])[cursor[best]]);
      ++cursor[best];
    }
    this->*member = std::move(merged);
  };
  merge_all(&RoundTrace::begins_);
  merge_all(&RoundTrace::updates_);
  merge_all(&RoundTrace::joins_);

  std::size_t new_begins = 0;
  for (const RoundTrace& other : others) new_begins += other.begins_.size();
  begin_index_.reserve(begin_index_.size() + new_begins);
  for (const RoundTrace& other : others) {
    for (const RoundEvent& begin : other.begins_) {
      begin_index_[begin_key(begin.round, begin.pid)] = begin.real_time;
    }
  }
}

}  // namespace wlsync::analysis
