#include "analysis/round_trace.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wlsync::analysis {

void RoundTrace::on_annotation(std::int32_t pid, double time,
                               const proc::Annotation& annotation) {
  const RoundEvent event{pid, annotation.round, time, annotation.value,
                         annotation.value2};
  switch (annotation.type) {
    case proc::Annotation::Type::kRoundBegin:
      begins_.push_back(event);
      begin_index_[{annotation.round, pid}] = time;
      break;
    case proc::Annotation::Type::kUpdate:
      updates_.push_back(event);
      break;
    case proc::Annotation::Type::kJoined:
      joins_.push_back(event);
      break;
    case proc::Annotation::Type::kCustom:
      break;
  }
}

std::vector<double> RoundTrace::begin_times(
    std::int32_t round, const std::vector<std::int32_t>& ids) const {
  std::vector<double> times;
  times.reserve(ids.size());
  for (std::int32_t id : ids) {
    const auto it = begin_index_.find({round, id});
    if (it == begin_index_.end()) return {};
    times.push_back(it->second);
  }
  return times;
}

double RoundTrace::begin_spread(std::int32_t round,
                                const std::vector<std::int32_t>& ids) const {
  const auto times = begin_times(round, ids);
  if (times.empty()) return std::numeric_limits<double>::quiet_NaN();
  const auto [lo, hi] = std::minmax_element(times.begin(), times.end());
  return *hi - *lo;
}

std::int32_t RoundTrace::last_complete_round(
    const std::vector<std::int32_t>& ids) const {
  std::int32_t round = -1;
  while (!begin_times(round + 1, ids).empty()) ++round;
  return round;
}

double RoundTrace::max_abs_adjustment(const std::vector<std::int32_t>& ids,
                                      std::int32_t from_round) const {
  double worst = 0.0;
  for (const RoundEvent& update : updates_) {
    if (update.round < from_round) continue;
    if (std::find(ids.begin(), ids.end(), update.pid) == ids.end()) continue;
    worst = std::max(worst, std::abs(update.value));
  }
  return worst;
}

void RoundTrace::absorb(const RoundTrace& other) {
  const auto merge_into = [](std::vector<RoundEvent>& dst,
                             const std::vector<RoundEvent>& src) {
    if (src.empty()) return;
    const auto mid = static_cast<std::ptrdiff_t>(dst.size());
    dst.insert(dst.end(), src.begin(), src.end());
    std::inplace_merge(dst.begin(), dst.begin() + mid, dst.end(),
                       [](const RoundEvent& a, const RoundEvent& b) {
                         if (a.real_time != b.real_time) {
                           return a.real_time < b.real_time;
                         }
                         return a.pid < b.pid;
                       });
  };
  merge_into(begins_, other.begins_);
  merge_into(updates_, other.updates_);
  merge_into(joins_, other.joins_);
  for (const RoundEvent& begin : other.begins_) {
    begin_index_[{begin.round, begin.pid}] = begin.real_time;
  }
}

}  // namespace wlsync::analysis
