#pragma once
// Passive collector of round structure from annotations.
//
// Algorithms annotate round begins (logical clock reached T^i), updates
// (ADJ applied) and joins; this sink indexes them so the analysis can
// compute the quantities the paper's theorems are stated over: the
// real-time spread of round begins (Theorem 4(c)'s beta), the adjustment
// magnitudes (Theorem 4(a)), and the per-round convergence series B^i.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/trace.h"

namespace wlsync::analysis {

struct RoundEvent {
  std::int32_t pid = 0;
  std::int32_t round = 0;
  double real_time = 0.0;
  double value = 0.0;   ///< label for begins; ADJ for updates
  double value2 = 0.0;  ///< AV for updates
};

class RoundTrace final : public sim::TraceSink {
 public:
  /// Annotations only — this sink never reads per-message callbacks, so
  /// the round fast path may batch deliveries past it (sim/trace.h).
  [[nodiscard]] bool wants_message_events() const override { return false; }

  void on_annotation(std::int32_t pid, double time,
                     const proc::Annotation& annotation) override;

  [[nodiscard]] const std::vector<RoundEvent>& begins() const noexcept {
    return begins_;
  }
  [[nodiscard]] const std::vector<RoundEvent>& updates() const noexcept {
    return updates_;
  }
  [[nodiscard]] const std::vector<RoundEvent>& joins() const noexcept {
    return joins_;
  }

  /// Real times at which each of `ids` began round `round`; empty entry
  /// list means some id has no begin record for that round.
  [[nodiscard]] std::vector<double> begin_times(
      std::int32_t round, const std::vector<std::int32_t>& ids) const;

  /// max - min of begin_times, or NaN if any id is missing.  This is the
  /// measured |t_p^i - t_q^i| <= beta quantity of Theorem 4(c).
  [[nodiscard]] double begin_spread(std::int32_t round,
                                    const std::vector<std::int32_t>& ids) const;

  /// Largest round for which *all* of `ids` have a begin record.
  [[nodiscard]] std::int32_t last_complete_round(
      const std::vector<std::int32_t>& ids) const;

  /// Max |ADJ| over updates by `ids` with round >= from_round.
  [[nodiscard]] double max_abs_adjustment(const std::vector<std::int32_t>& ids,
                                          std::int32_t from_round) const;

  /// Merges another trace's events into this one, keeping every event
  /// vector sorted by (real_time, pid).  Both traces must individually be
  /// time-sorted — true of any trace filled by a live run.  This is how
  /// the PDES engine's per-lane traces (each sees only its shard, in lane
  /// order) fold back into the run's single trace.
  void absorb(const RoundTrace& other);

  /// absorb() for a whole lane set at once: one k-way merge into a single
  /// preallocated buffer instead of k incremental inplace_merge passes
  /// (each of which re-acquires a temporary buffer), and one reserved
  /// re-index.  Equivalent to absorbing each trace in order; the PDES
  /// engine folds its per-lane traces through this.
  void absorb_all(const std::vector<RoundTrace>& others);

 private:
  /// (round, pid) packed into one key: rounds and pids are non-negative
  /// 31-bit values, so the pair fits a single 64-bit word and the index
  /// can be a flat hash map — round-begin insertion happens once per
  /// process per round inside the measured engine span, and absorb()
  /// re-indexes whole lane traces, so it matters that this is not a
  /// node-allocating ordered map.
  [[nodiscard]] static std::uint64_t begin_key(std::int32_t round,
                                               std::int32_t pid) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(round))
            << 32) |
           static_cast<std::uint32_t>(pid);
  }

  std::vector<RoundEvent> begins_;
  std::vector<RoundEvent> updates_;
  std::vector<RoundEvent> joins_;
  std::unordered_map<std::uint64_t, double> begin_index_;
};

}  // namespace wlsync::analysis
