#include "analysis/measure.h"

#include <thread>

#include "analysis/parallel_runner.h"

namespace wlsync::analysis {

std::vector<double> sample_times_with_endpoint(double t0, double t1,
                                               double dt) {
  std::vector<double> times;
  for (double t = t0; t < t1; t += dt) times.push_back(t);
  times.push_back(t1);
  return times;
}

std::vector<double> sample_times_closed(double t0, double t1, double dt) {
  std::vector<double> times;
  for (double t = t0; t <= t1; t += dt) times.push_back(t);
  return times;
}

LocalTimeGrid sample_local_times(const sim::Simulator& sim,
                                 const std::vector<std::int32_t>& ids,
                                 std::vector<double> times, int threads) {
  LocalTimeGrid grid;
  grid.times = std::move(times);
  grid.rows = ids.size();
  grid.cols = grid.times.size();
  grid.values.resize(grid.rows * grid.cols);

  const auto sample_row = [&](std::size_t r) {
    const std::int32_t id = ids[r];
    clk::PhysicalClock::Walker clock(sim.clock(id));
    sim::CorrLog::Walker corr(sim.corr_log(id));
    double* row = grid.values.data() + r * grid.cols;
    for (std::size_t k = 0; k < grid.cols; ++k) {
      // The same expression as Simulator::local_time, cursor-evaluated.
      row[k] = clock.now(grid.times[k]) + corr.displayed_at(grid.times[k]);
    }
  };

  bool parallel = threads > 1;
  if (threads == 0) {
    // Auto mode: shard big grids — but never from inside an outer
    // ParallelRunner sweep, where the cores are already claimed by trials
    // and a nested pool per measurement window would oversubscribe them.
    parallel = grid.rows >= 2 && grid.rows * grid.cols >= kMeasureShardThreshold &&
               std::thread::hardware_concurrency() > 1 &&
               !ParallelRunner::in_worker();
  }
  if (parallel) {
    // Rows write disjoint slices and walk disjoint clocks, so any worker
    // count and interleaving computes the identical grid.
    ParallelRunner(threads).run_indexed(grid.rows, sample_row);
  } else {
    for (std::size_t r = 0; r < grid.rows; ++r) sample_row(r);
  }
  return grid;
}

NicSummary summarize_nic(const sim::Simulator& sim) {
  NicSummary summary;
  if (!sim.nic_enabled()) return summary;
  for (std::int32_t id = 0; id < sim.process_count(); ++id) {
    const sim::NicStats& stats = sim.nic_stats(id);
    summary.arrivals += stats.arrivals;
    summary.served += stats.served;
    summary.dropped += stats.dropped;
    summary.service_events += stats.service_events;
    summary.worst_dropped = std::max(summary.worst_dropped, stats.dropped);
    summary.peak_queue = std::max(summary.peak_queue, stats.peak_queue);
    summary.max_burst = std::max(summary.max_burst, stats.max_burst);
  }
  return summary;
}

bool nic_summaries_identical(const NicSummary& a, const NicSummary& b) {
  return a.arrivals == b.arrivals && a.served == b.served &&
         a.dropped == b.dropped && a.service_events == b.service_events &&
         a.worst_dropped == b.worst_dropped && a.peak_queue == b.peak_queue &&
         a.max_burst == b.max_burst;
}

}  // namespace wlsync::analysis
