#include "analysis/observe.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wlsync::analysis {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

StreamingObserver::StreamingObserver(sim::Simulator& sim, ObserveSpec spec)
    : sim_(sim), spec_(std::move(spec)), derived_(core::derive(spec_.params)) {
  if (spec_.ids.empty()) {
    throw std::invalid_argument("StreamingObserver: no ids to measure");
  }
  if (spec_.skew_dt <= 0.0 || spec_.validity_dt <= 0.0) {
    throw std::invalid_argument("StreamingObserver: sample steps must be > 0");
  }
  if (spec_.gradient && spec_.topology == nullptr) {
    throw std::invalid_argument(
        "StreamingObserver: gradient observation needs a topology");
  }
  stats_.enabled = true;
  stats_.bounded = spec_.truncate;

  const std::size_t m = spec_.ids.size();
  grid_clock_.reserve(m);
  grid_corr_.reserve(m);
  round_clock_.reserve(m);
  round_corr_.reserve(m);
  for (const std::int32_t id : spec_.ids) {
    grid_clock_.emplace_back(sim_.clock(id));
    grid_corr_.emplace_back(sim_.corr_log(id));
    round_clock_.emplace_back(sim_.clock(id));
    round_corr_.emplace_back(sim_.corr_log(id));
  }
  locals_.assign(m, 0.0);

  measured_.assign(static_cast<std::size_t>(sim_.process_count()), 0);
  for (const std::int32_t id : spec_.ids) {
    measured_[static_cast<std::size_t>(id)] = 1;
  }
  round_skew_.assign(static_cast<std::size_t>(spec_.max_rounds) + 8, kNaN);

  // Sample storage is bounded by the horizon: the skew window opens no
  // earlier than tmin0 and every drained instant is <= t_end <= horizon.
  // Reserving against that bound is what keeps the drain allocation-free
  // (gated by bench_micro --smoke).
  const double span = std::max(spec_.horizon - spec_.tmin0, 0.0);
  gradient_capacity_ = static_cast<std::size_t>(span / spec_.skew_dt) + 8;
  skew_times_.reserve(gradient_capacity_);
  skew_values_.reserve(gradient_capacity_);

  skew_hist_.assign(kSkewHistBuckets, 0);
  hist_bucket_width_ = std::max(spec_.skew_hist_max, 1e-12) /
                       static_cast<double>(kSkewHistBuckets);

  if (spec_.gradient) {
    axis_ = build_gradient_axis(*spec_.topology, spec_.ids);
    gradient_rows_.assign(axis_.distances.size() * gradient_capacity_, 0.0);
  }

  // An explicit window-open instant bypasses the anchor-round trigger (the
  // on_round_begin anchor block is guarded on skew_open_).
  if (spec_.skew_t0 >= 0.0) {
    skew_open_ = true;
    t_steady_ = spec_.skew_t0;
    skew_next_ = spec_.skew_t0;
    stats_.t_steady = spec_.skew_t0;
  }

  // Validity folds start exactly where check_validity starts them.
  validity_next_ = spec_.validity_t0;
  max_upper_ = -std::numeric_limits<double>::infinity();
  max_lower_ = -std::numeric_limits<double>::infinity();
  hi_slope_ = -std::numeric_limits<double>::infinity();
  lo_slope_ = std::numeric_limits<double>::infinity();
}

void StreamingObserver::sample_locals(double t) {
  // The same expression as Simulator::local_time, cursor-evaluated — the
  // exact doubles sample_local_times produces for this row/instant.
  for (std::size_t r = 0; r < locals_.size(); ++r) {
    locals_[r] = grid_clock_[r].now(t) + grid_corr_[r].displayed_at(t);
  }
  ++stats_.samples;
}

void StreamingObserver::apply_skew_sample(double t) {
  // Column fold in id order — identical to skew_series' per-column spread.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const double local : locals_) {
    lo = std::min(lo, local);
    hi = std::max(hi, local);
  }
  const double skew = hi - lo;
  const std::size_t k = skew_times_.size();
  skew_times_.push_back(t);
  skew_values_.push_back(skew);
  skew_max_ = std::max(skew_max_, skew);
  skew_sum_ += skew;
  // Clamp in double space BEFORE the integer cast: diverged runs produce
  // skew samples (~1e300) whose quotient exceeds the size_t range, and an
  // out-of-range float-to-integer conversion is UB.
  const double raw_bucket = std::max(skew, 0.0) / hist_bucket_width_;
  const std::size_t bucket =
      raw_bucket >= static_cast<double>(kSkewHistBuckets - 1)
          ? kSkewHistBuckets - 1
          : static_cast<std::size_t>(raw_bucket);
  ++skew_hist_[bucket];

  if (spec_.gradient && !axis_.distances.empty()) {
    if (k >= gradient_capacity_) {
      throw std::logic_error(
          "StreamingObserver: sample count exceeded the horizon-derived "
          "capacity (ObserveSpec::horizon too small)");
    }
    // The post-hoc pair scan, one column at a time: fold |L_i - L_j| into
    // the pair's distance bucket with max (order-insensitive, so this is
    // bit-identical to the sharded gradient_series matrix).
    const std::vector<std::int32_t>& ids = spec_.ids;
    const std::size_t m = ids.size();
    for (std::size_t i = 0; i + 1 < m; ++i) {
      const std::vector<std::int32_t>& dist =
          spec_.topology->distances_from(ids[i]);
      const double local_i = locals_[i];
      for (std::size_t j = i + 1; j < m; ++j) {
        const std::int32_t d = dist[static_cast<std::size_t>(ids[j])];
        if (d < 1) continue;
        const std::int32_t b = axis_.bucket_of[static_cast<std::size_t>(d)];
        double& cell =
            gradient_rows_[static_cast<std::size_t>(b) * gradient_capacity_ + k];
        const double pair_skew = std::abs(local_i - locals_[j]);
        if (pair_skew > cell) cell = pair_skew;
      }
    }
  }
}

void StreamingObserver::apply_validity_sample(double t) {
  // check_validity's inner loop, verbatim (same fold order: this instant,
  // then ids in order).
  const double upper = derived_.alpha2 * (t - spec_.tmin0) + derived_.alpha3;
  const double lower = derived_.alpha1 * (t - spec_.tmax0) - derived_.alpha3;
  for (const double local : locals_) {
    const double elapsed = local - spec_.params.T0;
    max_upper_ = std::max(max_upper_, elapsed - upper);
    max_lower_ = std::max(max_lower_, lower - elapsed);
    if (t - spec_.tmin0 > 0.0) {
      hi_slope_ = std::max(hi_slope_, elapsed / (t - spec_.tmin0));
    }
    if (t - spec_.tmax0 > 0.0) {
      lo_slope_ = std::min(lo_slope_, elapsed / (t - spec_.tmax0));
    }
  }
}

void StreamingObserver::drain(double limit, bool closed) {
  // Merged monotone drain of the two grid streams; `closed` admits
  // validity instants equal to the limit (the closed-grid endpoint at
  // finalize).  Every CORR entry and clock segment governing an instant
  // strictly before the current simulated time is final, which is what
  // makes draining during the run exact.
  for (;;) {
    const double t = std::min(skew_next_, validity_next_);
    const bool take_skew = skew_next_ == t && t < limit;
    const bool take_validity =
        validity_next_ == t && (closed ? t <= limit : t < limit);
    if (!take_skew && !take_validity) break;
    sample_locals(t);
    if (take_skew) {
      apply_skew_sample(t);
      skew_next_ += spec_.skew_dt;  // the grids' t += dt accumulation walk
    }
    if (take_validity) {
      apply_validity_sample(t);
      validity_next_ += spec_.validity_dt;
    }
  }
}

double StreamingObserver::on_advance(double now) {
  drain(now, /*closed=*/false);
  return next_interest();
}

void StreamingObserver::on_adjustment(std::int32_t /*pid*/, double /*t*/,
                                      double /*old_target*/,
                                      double /*new_target*/) {
  ++stats_.adjustments;
}

void StreamingObserver::on_nic_drop(std::int32_t /*pid*/, double /*t*/) {
  ++stats_.nic_drops;
}

void StreamingObserver::eval_round_skew(std::int32_t round, double t) {
  if (round < 0) return;
  const auto r = static_cast<std::size_t>(round);
  if (r >= round_skew_.size()) round_skew_.resize(r + 1, kNaN);
  // Round instants arrive in execution order; the clamp only engages in
  // the degenerate interleaving where a round-r begin lands after a later
  // round already flushed (diverged runs), keeping the walkers monotone.
  const double q = std::max(t, last_round_query_);
  last_round_query_ = q;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < round_clock_.size(); ++i) {
    const double local = round_clock_[i].now(q) + round_corr_[i].displayed_at(q);
    lo = std::min(lo, local);
    hi = std::max(hi, local);
  }
  round_skew_[r] = hi - lo;
}

void StreamingObserver::note_history() {
  stats_.peak_history_bytes =
      std::max(stats_.peak_history_bytes, sim_.history_bytes());
}

void StreamingObserver::flush_round_and_truncate(double now) {
  if (pending_round_ >= 0) {
    eval_round_skew(pending_round_, pending_instant_);
    pending_round_ = -1;
  }
  note_history();
  if (spec_.truncate) {
    // Every future query targets >= now: the grid streams have drained
    // everything strictly before the current event time, round instants
    // are at or after it, and finalize queries t_end.  The defensive min
    // guards hand-driven simulations that attach mid-run.
    const double frontier = std::min(now, next_interest());
    stats_.truncated_entries += sim_.truncate_history_before(frontier);
    ++stats_.truncations;
  }
}

void StreamingObserver::on_round_begin(std::int32_t pid, std::int32_t round,
                                       double t) {
  if (pid < 0 || static_cast<std::size_t>(pid) >= measured_.size() ||
      measured_[static_cast<std::size_t>(pid)] == 0) {
    return;
  }
  ++stats_.round_marks;

  // Steady-state anchor: the window opens at the LAST measured begin of
  // the anchor round — the same instant the post-hoc pipeline anchors its
  // gamma window at.
  if (!skew_open_ && round == spec_.anchor_round) {
    if (++anchor_seen_ == static_cast<std::int32_t>(spec_.ids.size())) {
      skew_open_ = true;
      t_steady_ = t;
      skew_next_ = t;
      stats_.t_steady = t;
    }
  }

  // Round-boundary skew stream: accumulate begins of the current round and
  // evaluate at its last begin when the next round opens (annotations
  // arrive in time order, so the last begin chronologically IS the max
  // begin instant the post-hoc loop evaluates at).
  if (round == pending_round_) {
    pending_instant_ = t;
  } else if (round > pending_round_) {
    flush_round_and_truncate(t);
    pending_round_ = round;
    pending_instant_ = t;
  } else {
    // Begin for an earlier round number — a regime change restarted the
    // numbering (the startup handoff resumes maintenance at its own round
    // index) or a straggler landed after its round flushed.  The pending
    // round must be evaluated first: its instant precedes this one, and
    // the round walkers only move forward.  Then re-evaluate the earlier
    // round at the new (chronologically later, hence larger) instant —
    // the post-hoc loop evaluates at the max begin over ALL begins that
    // carry the round number, whichever regime produced them.
    if (pending_round_ >= 0) {
      eval_round_skew(pending_round_, pending_instant_);
      pending_round_ = -1;
    }
    eval_round_skew(round, t);
  }
}

StreamingSummary StreamingObserver::finalize(double t_end) {
  if (finalized_) {
    throw std::logic_error("StreamingObserver::finalize called twice");
  }
  finalized_ = true;

  if (pending_round_ >= 0) {
    eval_round_skew(pending_round_, pending_instant_);
    pending_round_ = -1;
  }
  if (!skew_open_) {
    // The anchor round never completed (diverged / truncated run): the
    // window collapses to the endpoint sample at t_end.
    skew_open_ = true;
    t_steady_ = t_end;
    skew_next_ = t_end;
    stats_.t_steady = t_end;
  }
  // Remaining grid instants: skew's half-open grid stops strictly before
  // t_end, validity's closed grid includes it.
  drain(t_end, /*closed=*/true);
  // The unconditional endpoint sample of sample_times_with_endpoint.
  sample_locals(t_end);
  apply_skew_sample(t_end);

  StreamingSummary summary;
  summary.final_skew = skew_values_.back();
  summary.skew.max_skew = skew_max_;
  stats_.skew_mean = skew_sum_ / static_cast<double>(skew_values_.size());
  const std::size_t cols = skew_times_.size();

  summary.validity.max_upper_violation = max_upper_;
  summary.validity.max_lower_violation = max_lower_;
  summary.validity.holds = max_upper_ <= 0.0 && max_lower_ <= 0.0;
  summary.validity.measured_hi_slope = hi_slope_;
  summary.validity.measured_lo_slope = lo_slope_;

  if (spec_.gradient) {
    // Summarize the capacity-strided accumulation matrix in place (no
    // repacking — the long-window runs this mode targets should not spike
    // memory after spending the run keeping history bounded).  The local
    // series carries the strided matrix and no times axis; the summary
    // helpers read only the axis vectors, cols and stride.
    GradientSeries series;
    series.distances = std::move(axis_.distances);
    series.pair_count = std::move(axis_.pair_count);
    series.diameter = axis_.diameter;
    series.skew_by_sample = std::move(gradient_rows_);
    finish_gradient_window_summaries(series, cols, gradient_capacity_);
    summary.gradient = summarize_gradient(series);
  }
  // The observer is finalized-once: hand the per-sample series over
  // instead of copying it.
  summary.skew.times = std::move(skew_times_);
  summary.skew.skews = std::move(skew_values_);

  // Trim trailing never-observed rounds.
  std::size_t last = round_skew_.size();
  while (last > 0 && std::isnan(round_skew_[last - 1])) --last;
  summary.skew_at_round.assign(round_skew_.begin(),
                               round_skew_.begin() + static_cast<std::ptrdiff_t>(last));

  note_history();
  stats_.final_history_bytes = sim_.history_bytes();
  // Histogram p99: the upper edge of the first bucket whose cumulative
  // count reaches 99% of the skew samples (cols counts the grid plus the
  // endpoint sample pushed above).
  const auto total = static_cast<std::uint64_t>(cols);
  if (total > 0) {
    const auto threshold = static_cast<std::uint64_t>(
        std::ceil(0.99 * static_cast<double>(total)));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < skew_hist_.size(); ++b) {
      seen += skew_hist_[b];
      if (seen >= threshold) {
        stats_.skew_p99 = hist_bucket_width_ * static_cast<double>(b + 1);
        break;
      }
    }
  }
  summary.stats = stats_;
  return summary;
}

}  // namespace wlsync::analysis
