#pragma once
// Turn-key experiment harness.
//
// Builds a simulated system per assumptions A1-A4 — drifting clocks, delays
// in [delta-eps, delta+eps], STARTs within beta along the real-time axis —
// populates it with a synchronization algorithm and a fault mix, runs a
// number of rounds, and measures everything the paper's claims quantify:
// round-begin spreads (Theorem 4(c)), adjustment magnitudes (Theorem 4(a)),
// the agreement gamma (Theorem 16), the validity envelope (Theorem 19) and
// convergence series.  Tests, examples, and every bench binary drive their
// scenarios through this single entry point.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/gradient.h"
#include "analysis/measure.h"
#include "analysis/observe.h"
#include "analysis/round_trace.h"
#include "analysis/skew.h"
#include "core/params.h"
#include "core/welch_lynch.h"
#include "net/dynamics.h"
#include "net/topology.h"
#include "proc/placement.h"
#include "sim/simulator.h"

namespace wlsync::analysis {

enum class Algo : std::uint8_t {
  kWelchLynch = 0,   ///< Section 4.2 (variants via RunSpec knobs)
  kLM = 1,           ///< interactive convergence [LM]
  kST = 2,           ///< Srikanth-Toueg [ST]
  kMS = 3,           ///< Mahaney-Schneider [MS]
  kPlainMean = 4,    ///< unguarded mean (ablation)
  kHSSD = 5,         ///< Halpern-Simons-Strong-Dolev (signatures; only
                     ///< omission faults are meaningful — see hssd.h)
};

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kSilent = 1,    ///< never sends (crashed from the start)
  kSpam = 2,      ///< floods junk messages
  kTwoFaced = 3,  ///< the splitter (worst case)
  kLiar = 4,      ///< honest algorithm on a wildly offset clock
};

enum class DelayKind : std::uint8_t {
  kUniform = 0,
  kFast = 1,     ///< all messages at delta - eps
  kSlow = 2,     ///< all messages at delta + eps
  kPerLink = 3,  ///< fixed asymmetric per-link delays
  kSplit = 4,    ///< adversarial: fast to low ids, slow to high ids
  kExpTrunc = 5, ///< exponential slack over the fast floor, A3-truncated
};

enum class DriftKind : std::uint8_t {
  kNone = 0,        ///< perfect clocks (rate 1)
  kExtremal = 1,    ///< alternating extreme legal rates, odd/even opposed
  kPiecewise = 2,   ///< uniform random rate per period
  kRandomWalk = 3,  ///< slowly wandering rate
};

/// Which execution engine run() drives (core/fastpath.h).  A pure
/// performance knob: the fast path is pinned bit-identical to the event
/// engine at results_identical strictness (tests/fastpath_test.cpp), like
/// SchedulerKind and batch_fanout before it.
enum class EngineMode : std::uint8_t {
  kEvent = 0,     ///< the event engine only (the measured reference)
  kFastpath = 1,  ///< require the fast path; throws if the spec is ineligible
  /// Fast path when the spec qualifies: Welch-Lynch with arena ingestion,
  /// no NIC, retained history, and either (a) fault-free — simultaneous or
  /// staggered (Section 9.3) broadcasts both batch — or (b) faults on a
  /// sparse unstaggered topology whose adversary closed neighborhood
  /// leaves a nonempty honest remainder (the fault-isolating region mode;
  /// core/fastpath.h).  Otherwise the PDES engine when the spec qualifies
  /// (no streaming observer, positive lookahead floor) and either
  /// pdes_workers >= 2 pins the shard count or pdes_workers <= 0 lets the
  /// auto-tuner pick one (engine::choose_pdes_workers); event engine last.
  /// RunResult::fastpath_refusal / pdes_refusal record why a declined
  /// engine was declined.
  kAuto = 2,
  /// Require the conservative PDES engine (engine/pdes.h); throws if the
  /// spec is ineligible.  Bit-identical to kEvent like the other engines.
  kPdes = 3,
};

/// Which experiment family run() executes for a RunSpec.
enum class RunMode : std::uint8_t {
  kMaintenance = 0,    ///< Section 4.2 steady state (Experiment::run)
  kStartup = 1,        ///< Section 9.2 start-up; fills RunResult::startup
  kReintegration = 2,  ///< Section 9.1 rejoin; fills RunResult::reintegration
};

/// The scenario-facing slice of a RunSpec: WHO misbehaves, WHERE they sit,
/// WHAT graph the run executes on, and HOW that graph changes over time.
/// Extracted from the flat RunSpec monolith so scenario generators (the
/// adversary env, the churn sweeps) can compose these knobs as one value.
/// RunSpec inherits this struct, so every historical flat access
/// (`spec.fault`, `spec.topology`, ...) compiles unchanged and is the SAME
/// object the nested view exposes — inheritance is the forwarding layer,
/// with zero overhead and no field duplication.
struct ScenarioSpec {
  FaultKind fault = FaultKind::kNone;
  std::int32_t fault_count = 0;  ///< how many processes misbehave
  /// Heterogeneous failure mix: when non-empty this overrides fault /
  /// fault_count; entry k contributes `count` processes of kind `kind`.
  /// Real deployments rarely fail uniformly — the analysis must hold for
  /// any mixture totalling at most f.
  struct FaultSpec {
    FaultKind kind = FaultKind::kSilent;
    std::int32_t count = 0;
  };
  std::vector<FaultSpec> fault_mix;
  /// kLiar: how late (real seconds) the liar's schedule runs.  Kept off the
  /// round period so its broadcasts alias into mid-round times.
  double liar_offset = 7.5;
  /// Which topology positions the faulty roster occupies (proc/placement.h).
  /// kTrailing is the historical highest-ids layout and keeps every
  /// pre-placement spec byte-identical; any other kind places faults
  /// positionally AND switches TwoFacedAdversary to its neighbor-scoped
  /// mode (victims = the adversary's honest neighborhood, per-neighbor
  /// faces) instead of the full-mesh id-range attack.
  proc::PlacementKind placement = proc::PlacementKind::kTrailing;
  /// Explicit fault positions (sorted or not; ids into [0, n)).  When
  /// non-empty this overrides `placement` entirely — the roster is exactly
  /// these ids (size must equal the resolved fault count) and the
  /// adversaries run in neighbor-scoped mode.  This is how the adaptive
  /// adversary re-places faces between episodes without inventing a new
  /// PlacementKind per candidate set.
  std::vector<std::int32_t> placement_ids;

  /// Exchange graph (net layer).  kFullMesh is the paper's model and runs
  /// the implicit-mesh fast path; sparse kinds open the large-n workload
  /// family (bench_topology).
  net::TopologySpec topology;
  /// Time-varying topology / churn schedule (net/dynamics.h).  Empty = the
  /// historical static graph.  Non-empty requires Algo::kWelchLynch, makes
  /// the fast path and the PDES engine refuse the run by name (never a
  /// silent static-graph execution), and — for topology-changing events on
  /// kFullMesh — materializes the mesh explicitly so it can be mutated.
  /// Leave/rejoin churn routes through core/reintegration's ChurnProcess;
  /// churned ids must be disjoint from the Byzantine roster.
  net::DynamicsSpec dynamics;
};

struct RunSpec : ScenarioSpec {
  core::Params params;
  Algo algo = Algo::kWelchLynch;
  core::Averaging averaging = core::Averaging::kMidpoint;
  std::int32_t k_exchanges = 1;
  double stagger = 0.0;
  double amortize = 0.0;
  /// Arrival-ingestion engine for the averaging algorithms (WL, LM, MS,
  /// plain mean, ST): the dense neighbor-slot arena (default) or the
  /// seed's sparse id-indexed path.  Executions are bit-identical either
  /// way (tests/ingest_pin_test.cpp); kLegacy is the measured reference,
  /// like batch_fanout = false.  HSSD keeps no per-sender state at all,
  /// so the knob is a no-op there — don't sweep the ingest axis for it.
  proc::IngestMode ingest = proc::IngestMode::kArena;

  /// The nested scenario view of this spec — the ScenarioSpec base
  /// subobject itself, not a copy (mutations through either view are the
  /// same bytes).
  [[nodiscard]] ScenarioSpec& scenario() noexcept { return *this; }
  [[nodiscard]] const ScenarioSpec& scenario() const noexcept { return *this; }

  /// Which experiment family run() executes.  kStartup reads
  /// startup_handoff / initial_clock_spread and fills RunResult::startup;
  /// kReintegration reads crash_at / wake_at and fills
  /// RunResult::reintegration.  Experiment itself accepts only
  /// kMaintenance.
  RunMode mode = RunMode::kMaintenance;
  /// kStartup: switch to maintenance after `rounds` (StartupSpec::handoff).
  bool startup_handoff = false;
  /// kStartup: initial local-time disagreement, read verbatim into
  /// StartupSpec::initial_clock_spread.  kMaintenance: > 0 engages the
  /// Khanchandani–Lenzen-style self-stabilization workload — every honest
  /// process additionally starts with CORR offset uniform in [0, spread),
  /// i.e. from arbitrary logical-clock state — and run() measures
  /// RunResult::stabilized_round / stabilization_time.  0 (default) is the
  /// historical aligned start.
  double initial_clock_spread = 0.0;
  /// kReintegration: real time the victim stops / is repaired
  /// (ReintegrationSpec::crash_at / wake_at).
  double crash_at = 0.0;
  double wake_at = 0.0;
  /// Stabilization threshold for the arbitrary-initial-state workload:
  /// the run counts as stabilized from the first round whose entire skew
  /// suffix stays <= this.  0 = 2 * gamma_bound.
  double stabilize_threshold = 0.0;

  DelayKind delay = DelayKind::kUniform;
  DriftKind drift = DriftKind::kExtremal;
  double drift_period = 2.0;

  /// Batched fan-out delivery: one scheduler entry per in-flight broadcast.
  /// Results are bit-identical either way (tests/topology_test.cpp); false
  /// keeps the seed's per-recipient scheduling as the measured baseline.
  bool batch_fanout = true;

  /// Real-time spread of the nonfaulty STARTs; < 0 means 0.9 * beta.
  double initial_spread = -1.0;
  std::int32_t rounds = 20;
  std::uint64_t seed = 1;
  std::optional<sim::NicConfig> nic;
  /// Engine scheduling policy — performance only; results are identical
  /// under every policy (see tests/engine_test.cpp).  kAuto selects by
  /// observed queue depth; set an explicit kind to override.
  engine::SchedulerKind scheduler = engine::SchedulerKind::kAuto;
  /// Round-synchronous fast path (core/fastpath.h) — performance only;
  /// executions are bit-identical either way.  kAuto engages it exactly on
  /// the eligible specs; set kEvent to force the reference engine (as the
  /// benches' --engine=event axis does) or kFastpath to assert eligibility.
  EngineMode engine = EngineMode::kAuto;
  /// Shard/worker count for the PDES engine (engine/pdes.h): the topology
  /// is cut into this many shards (net/partition.h), one thread each.
  /// <= 0 (the default) auto-tunes: engine::choose_pdes_workers scores
  /// candidate shard counts from partition cut statistics and live stall
  /// telemetry, and the run stays serial (pdes_refusal says why) when no
  /// candidate scores.  engine = kPdes accepts any explicit value >= 1
  /// (1 = single-shard, one epoch — useful for pinning the protocol
  /// without concurrency) and throws when auto-tune declines.  Performance
  /// only: executions are bit-identical at results_identical strictness
  /// for any worker count (tests/pdes_test.cpp).
  std::int32_t pdes_workers = 0;
  /// PDES lookahead mode (engine/pdes.h): true (default) folds per-epoch
  /// adaptive windows from the lanes' actual next-send horizons; false
  /// keeps the static global-cut-floor window.  Performance only — both
  /// are bit-identical to the serial engine; adaptive never takes more
  /// epochs than static (tests/pdes_property_test.cpp).
  bool pdes_adaptive = true;

  double lm_delta_max = 0.0;  ///< 0 = auto
  double ms_tau = 0.0;        ///< 0 = auto

  /// Measure skew-vs-distance (analysis/gradient.h) over the steady-state
  /// window and fill RunResult::gradient.  Works on any topology (on the
  /// full mesh every pair sits at distance 1).
  bool measure_gradient = false;

  /// Streaming in-run observation (analysis/observe.h): attach a
  /// StreamingObserver for the run and fill the measured RunResult fields
  /// (gamma_measured, validity, gradient, skew_at_round, final_skew) from
  /// its event-driven accumulators instead of the post-hoc grids.  Values
  /// are bit-identical to the post-hoc pipeline on the same windows
  /// (tests/observer_test.cpp); the steady-state window anchors at the
  /// last honest begin of round (rounds + 1) / 2 — the post-hoc anchor
  /// for runs that complete their rounds — so on healthy runs observe
  /// on/off is a measurement-engine A/B, not a physics change.  A
  /// degraded run that never completes the anchor round collapses the
  /// window to the endpoint sample (the post-hoc anchor is
  /// retrospective and cannot be sampled in one pass);
  /// ObserveStats::t_steady == t_end marks that case.  RunResult::observe
  /// carries the telemetry.
  bool observe = false;
  /// Bounded-memory mode (requires observe): truncate every clock's
  /// segment list and CORR log behind the observation frontier while the
  /// run progresses.  Measured results are bit-identical to the retained
  /// observe run (pinned by tests/observer_test.cpp); post-hoc probes on
  /// the simulator afterwards are no longer possible.
  bool retain_history = true;
  /// Skew/gradient sample step for observe mode; 0 = P/25, the post-hoc
  /// grid.  Coarser steps make very long windows cheaper to observe.
  double observe_dt = 0.0;
  /// Runaway-execution guard override; 0 keeps SimConfig's default
  /// (50M events).  Large-n meshes need it: one n = 4096 full-mesh
  /// exchange is ~16.8M deliveries, so a handful of rounds legitimately
  /// exceeds the default budget (bench_micro --fastpath-json raises it).
  std::uint64_t max_events = 0;
};

// ------------------------------------------------------------------------
// Start-up synchronization (Section 9.2).  Declared before RunResult so
// the unified run() can embed the result (std::optional needs the
// complete type).

struct StartupSpec {
  core::Params params;
  std::int32_t rounds = 12;
  bool handoff = false;  ///< switch to maintenance after `rounds`
  /// Initial local-time disagreement (clock values are "arbitrary").
  double initial_clock_spread = 1.0;
  FaultKind fault = FaultKind::kNone;
  std::int32_t fault_count = 0;
  DelayKind delay = DelayKind::kUniform;
  DriftKind drift = DriftKind::kExtremal;
  std::uint64_t seed = 1;
  /// Streaming in-run observation (analysis/observe.h): measure b_series
  /// through a StreamingObserver's round-boundary stream instead of the
  /// post-hoc per-round skew_at scans.  Bit-identical either way
  /// (tests/startup_test.cpp) — this flag used to be silently ignored by
  /// run_startup; now it switches the measurement engine like
  /// RunSpec::observe does for Experiment::run.
  bool observe = false;
};

struct StartupResult {
  /// B^i: max difference between nonfaulty clock values at the latest real
  /// time a nonfaulty process begins round i (Lemma 20's quantity).
  std::vector<double> b_series;
  double round_slack = 0.0;  ///< 2 eps + 2 rho (11 delta + 39 eps)
  double limit = 0.0;        ///< 2 * round_slack
  double final_b = 0.0;
  bool handoff_done = false;
  double post_handoff_skew = 0.0;  ///< steady skew under maintenance
  /// Observation telemetry (defaults when StartupSpec::observe is off).
  /// Like RunResult::observe, NOT part of any identity comparison.
  ObserveStats observe;
};

// ------------------------------------------------------------------------
// Reintegration (Section 9.1)

struct ReintegrationSpec {
  core::Params params;
  double crash_at = 0.0;  ///< real time the victim stops
  double wake_at = 0.0;   ///< real time it is repaired (>= crash_at + 2P)
  std::int32_t rounds = 30;
  DelayKind delay = DelayKind::kUniform;
  DriftKind drift = DriftKind::kExtremal;
  std::uint64_t seed = 1;
  /// Streaming in-run observation: run in P-sized chunks until the victim
  /// rejoins, then attach a StreamingObserver whose skew window opens at
  /// join_time + 2P (ObserveSpec::skew_t0) and measure skew_after from its
  /// accumulators instead of the post-hoc skew_series walk.  Bit-identical
  /// either way (tests/reintegration_test.cpp); previously this knob did
  /// not exist and observation requests were silently impossible here.
  bool observe = false;
};

struct ReintegrationResult {
  bool rejoined = false;
  double join_time = 0.0;
  std::int32_t join_round = 0;
  /// Begin spread of the first round that includes the rejoined process;
  /// Section 9.1 claims it is within beta.
  double spread_with_joiner = 0.0;
  double beta = 0.0;
  double skew_after = 0.0;  ///< steady skew including the joiner
  double gamma_bound = 0.0;
  /// Observation telemetry (defaults when ReintegrationSpec::observe is
  /// off).  NOT part of any identity comparison.
  ObserveStats observe;
};

struct RunResult {
  std::vector<std::int32_t> honest;
  double gamma_bound = 0.0;
  double gamma_measured = 0.0;  ///< steady-state max skew among honest
  double adj_bound = 0.0;
  double max_abs_adj = 0.0;
  std::vector<double> begin_spread;   ///< per-round real-time begin spread
  std::vector<double> skew_at_round;  ///< skew at each round's last begin
  ValidityReport validity;
  /// Skew-vs-distance curves; empty unless RunSpec::measure_gradient.
  GradientSummary gradient;
  double final_skew = 0.0;
  bool diverged = false;
  std::uint64_t messages = 0;
  std::uint64_t nic_dropped = 0;
  /// UPDATEs skipped because NIC drops / serialization emptied a collection
  /// window (missed-round semantics; see WelchLynchProcess::window_starved).
  /// Summed over the Welch-Lynch processes; deterministic physics, so it IS
  /// part of results_identical.
  std::int64_t starved_updates = 0;
  /// Section 9.3 ingress accounting (all zeros when RunSpec::nic is unset).
  NicSummary nic;
  double tmin0 = 0.0;
  double tmax0 = 0.0;
  double t_end = 0.0;
  std::int32_t completed_rounds = 0;
  /// Self-stabilization measurement (RunSpec::initial_clock_spread > 0 in
  /// kMaintenance mode, but computed for every maintenance run): the first
  /// round index whose ENTIRE skew_at_round suffix stays within the
  /// stabilization threshold (RunSpec::stabilize_threshold; default
  /// 2 * gamma_bound), and the real time of that round's last honest begin
  /// minus tmax0.  -1 when the run never stabilizes (or completed no
  /// rounds).  Deterministic physics — part of results_identical.
  std::int32_t stabilized_round = -1;
  double stabilization_time = -1.0;
  /// Scenario events the simulator applied (sim::Simulator::
  /// dynamics_applied); 0 on static runs.  Deterministic — part of
  /// results_identical, pinning that every engine saw the same schedule.
  std::int64_t dynamics_applied = 0;
  /// Mode-specific payloads of the unified run(): engaged exactly when
  /// RunSpec::mode is kStartup / kReintegration.  NOT part of
  /// results_identical (the flat fields above stay the comparison surface;
  /// the legacy entry points are pinned bit-identical through these).
  std::optional<StartupResult> startup;
  std::optional<ReintegrationResult> reintegration;
  /// Wall-clock seconds this trial took (run_experiment measures it; the
  /// ParallelRunner streams it to sweep CSVs).  Telemetry only — it is NOT
  /// part of results_identical, which compares measured physics.
  double wall_seconds = 0.0;
  /// Wall-clock seconds of the engine span alone: the fastpath / PDES /
  /// event-loop execution between setup (topology, simulator, partition)
  /// and measurement (trace scans, skew series).  This is the number
  /// engine-vs-engine comparisons should use — wall_seconds folds in
  /// per-spec costs every engine pays identically, which dilutes any
  /// speedup toward 1.  Telemetry, NOT part of results_identical.
  double engine_seconds = 0.0;
  /// Streaming-observation telemetry (all defaults when RunSpec::observe
  /// is off).  Like wall_seconds, NOT part of results_identical: the
  /// history footprint intentionally differs between retained and bounded
  /// runs of identical physics.
  ObserveStats observe;
  /// Round-fast-path telemetry (core/fastpath.h).  Like wall_seconds, NOT
  /// part of results_identical — engine selection is a performance knob
  /// and the measured physics are pinned identical across engines.
  bool fastpath_engaged = false;
  std::int64_t fastpath_exchanges = 0;
  /// Times the fast path re-armed after a clean handoff to the event
  /// engine mid-run (core/fastpath.h).  Telemetry, not physics.
  std::int64_t fastpath_rearms = 0;
  /// Fast-set size and merged-loop engine dispatches (FastPathStats::
  /// fast_count / region_events); zero unless the fast path ran.
  std::int32_t fastpath_fast_count = 0;
  std::int64_t fastpath_region_events = 0;
  /// Why engine = kAuto declined (or disengaged from) the fast path / the
  /// PDES engine: the spec- or system-level block reason, or the entry
  /// handoff when the fast path ran but never engaged.  Empty when the
  /// engine engaged or was never a candidate (e.g. pdes_workers < 2).
  /// Telemetry, NOT part of results_identical — like wall_seconds it
  /// describes how the run was computed, and the silent-fallback bug it
  /// fixes was precisely that this information evaporated.
  std::string fastpath_refusal;
  std::string pdes_refusal;
  /// PDES telemetry (engine/pdes.h): conservative windows executed and
  /// lane-epochs that dispatched nothing.  Zero when the engine didn't
  /// run.  Like wall_seconds, NOT part of results_identical.
  std::int64_t pdes_epochs = 0;
  std::int64_t pdes_stalls = 0;
  /// Shard/worker count the PDES engine actually ran with (the auto-tuner's
  /// pick when pdes_workers <= 0).  Zero when the engine didn't run.
  /// Telemetry, NOT part of results_identical.
  std::int32_t pdes_workers_used = 0;
};

/// A constructed system ready to run; exposes the simulator for tests that
/// need finer control than run() provides.
class Experiment {
 public:
  explicit Experiment(RunSpec spec);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Runs the configured number of rounds and measures.
  [[nodiscard]] RunResult run();

  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
  /// The real-time horizon run() simulates to (the A4 schedule plus one
  /// extra round and measurement slack).
  [[nodiscard]] double horizon() const;
  /// The ObserveSpec run() attaches when RunSpec::observe is set — exposed
  /// so external harnesses (bench_micro --smoke) gate the exact
  /// configuration production runs use, not a hand-rolled copy.
  [[nodiscard]] ObserveSpec make_observe_spec();
  /// The materialized exchange graph (built on demand; full mesh when the
  /// spec leaves the topology at its default).
  [[nodiscard]] const net::Topology& topology();
  [[nodiscard]] RoundTrace& trace() noexcept { return trace_; }
  [[nodiscard]] const std::vector<std::int32_t>& honest() const noexcept {
    return honest_;
  }
  [[nodiscard]] double tmin0() const noexcept { return tmin0_; }
  [[nodiscard]] double tmax0() const noexcept { return tmax0_; }

 private:
  void build();

  RunSpec spec_;
  std::unique_ptr<sim::Simulator> sim_;
  RoundTrace trace_;
  std::vector<std::int32_t> honest_;
  net::Topology topo_;  ///< valid iff topo_built_
  bool topo_built_ = false;
  double tmin0_ = 0.0;
  double tmax0_ = 0.0;
};

/// THE experiment entry point: dispatches on RunSpec::mode.
///   kMaintenance   — Experiment::run (plus the stabilization measurement
///                    when initial_clock_spread > 0);
///   kStartup       — the Section 9.2 start-up experiment; the flat fields
///                    map verbatim into a StartupSpec and the full result
///                    lands in RunResult::startup;
///   kReintegration — the Section 9.1 rejoin experiment, likewise into
///                    RunResult::reintegration.
/// wall_seconds is measured here for every mode.  The three historical
/// entry points below are thin wrappers over this function and stay
/// bit-identical to their pre-unification behaviour (pinned in
/// tests/scenario_test.cpp).
[[nodiscard]] RunResult run(const RunSpec& spec);

/// Deprecated: use run().  Kept as a one-line wrapper (same result,
/// bit-identical) so two PR-generations of callers keep compiling.
[[nodiscard]] RunResult run_experiment(const RunSpec& spec);

/// Deprecated: use run() with mode = kStartup.  Wrapper over run();
/// returns the embedded RunResult::startup payload.
[[nodiscard]] StartupResult run_startup(const StartupSpec& spec);

/// Deprecated: use run() with mode = kReintegration.  Wrapper over run();
/// returns the embedded RunResult::reintegration payload.
[[nodiscard]] ReintegrationResult run_reintegration(const ReintegrationSpec& spec);

}  // namespace wlsync::analysis
