#include "analysis/gradient.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "analysis/measure.h"
#include "analysis/parallel_runner.h"
#include "util/stats.h"

namespace wlsync::analysis {

GradientAxis build_gradient_axis(const net::Topology& topo,
                                 const std::vector<std::int32_t>& ids) {
  GradientAxis axis;
  axis.diameter = topo.diameter();  // warms every BFS row of the cache
  if (axis.diameter < 0) {
    // Skew across disconnected components is unbounded and the distance
    // buckets below are sized by the diameter; reject rather than measure
    // nonsense (the experiment harness validates connectivity up front).
    throw std::invalid_argument("gradient_series: topology is disconnected");
  }
  // Bucket axis: the distances that occur between measured pairs.  The
  // serial O(m^2) integer pass also yields the per-bucket pair counts.
  const std::size_t m = ids.size();
  const std::size_t max_d =
      axis.diameter > 0 ? static_cast<std::size_t>(axis.diameter) : 0;
  std::vector<std::int64_t> count_by_raw(max_d + 1, 0);
  for (std::size_t i = 0; i + 1 < m; ++i) {
    const std::vector<std::int32_t>& row = topo.distances_from(ids[i]);
    for (std::size_t j = i + 1; j < m; ++j) {
      const std::int32_t d = row[static_cast<std::size_t>(ids[j])];
      if (d >= 1) count_by_raw[static_cast<std::size_t>(d)] += 1;
    }
  }
  axis.bucket_of.assign(max_d + 1, -1);
  for (std::size_t d = 1; d <= max_d; ++d) {
    if (count_by_raw[d] > 0) {
      axis.bucket_of[d] = static_cast<std::int32_t>(axis.distances.size());
      axis.distances.push_back(static_cast<std::int32_t>(d));
      axis.pair_count.push_back(count_by_raw[d]);
    }
  }
  return axis;
}

void finish_gradient_window_summaries(GradientSeries& series, std::size_t cols,
                                      std::size_t stride) {
  const std::size_t buckets = series.distances.size();
  if (cols == 0) cols = series.times.size();
  if (stride == 0) stride = cols;
  series.max_skew.resize(buckets);
  series.mean_skew.resize(buckets);
  series.p99_skew.resize(buckets);
  series.frontier.resize(buckets);
  double running = 0.0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const double* row = series.skew_by_sample.data() + b * stride;
    double hi = 0.0;
    double sum = 0.0;
    for (std::size_t k = 0; k < cols; ++k) {
      hi = std::max(hi, row[k]);
      sum += row[k];
    }
    series.max_skew[b] = hi;
    series.mean_skew[b] = sum / static_cast<double>(cols);
    series.p99_skew[b] = util::quantile({row, cols}, 0.99);
    running = std::max(running, hi);
    series.frontier[b] = running;
  }
}

GradientSeries gradient_series(const sim::Simulator& sim,
                               const std::vector<std::int32_t>& ids,
                               const net::Topology& topo, double t0, double t1,
                               double dt, int threads) {
  GradientSeries series;
  GradientAxis axis = build_gradient_axis(topo, ids);
  series.diameter = axis.diameter;
  series.distances = std::move(axis.distances);
  series.pair_count = std::move(axis.pair_count);
  const std::vector<std::int32_t>& bucket_of = axis.bucket_of;
  const LocalTimeGrid grid = sample_local_times(
      sim, ids, sample_times_with_endpoint(t0, t1, dt), threads);
  series.times = grid.times;

  const std::size_t m = ids.size();
  const std::size_t buckets = series.distances.size();
  const std::size_t cols = grid.cols;
  series.skew_by_sample.assign(buckets * cols, 0.0);
  if (buckets == 0 || cols == 0) return series;

  // Pair scan, sharded: shard s owns the strided rows i = s, s + shards,
  // ... (the pair count per row shrinks with i, so striding balances the
  // load).  Each shard folds |L_i - L_j| into a private bucket x sample
  // matrix with max; the serial max-merge afterwards makes the result
  // independent of shard count and interleaving — max is order-insensitive,
  // so this is bit-identical to the naive per-sample reference scan.
  const auto scan_rows = [&](double* matrix, std::size_t first,
                             std::size_t stride) {
    for (std::size_t i = first; i + 1 < m; i += stride) {
      const std::vector<std::int32_t>& dist = topo.distances_from(ids[i]);
      const double* row_i = grid.values.data() + i * cols;
      for (std::size_t j = i + 1; j < m; ++j) {
        const std::int32_t d = dist[static_cast<std::size_t>(ids[j])];
        if (d < 1) continue;
        const std::int32_t b = bucket_of[static_cast<std::size_t>(d)];
        double* bucket_row = matrix + static_cast<std::size_t>(b) * cols;
        const double* row_j = grid.values.data() + j * cols;
        for (std::size_t k = 0; k < cols; ++k) {
          const double skew = std::abs(row_i[k] - row_j[k]);
          if (skew > bucket_row[k]) bucket_row[k] = skew;
        }
      }
    }
  };

  bool parallel = threads > 1;
  if (threads == 0) {
    parallel = m >= 4 && (m * (m - 1) / 2) * cols >= kMeasureShardThreshold &&
               std::thread::hardware_concurrency() > 1 &&
               !ParallelRunner::in_worker();
  }
  if (parallel) {
    const ParallelRunner runner(threads);
    const std::size_t shards =
        std::min<std::size_t>(static_cast<std::size_t>(runner.threads()), m);
    std::vector<double> partial(shards * buckets * cols, 0.0);
    runner.run_indexed(shards, [&](std::size_t s) {
      scan_rows(partial.data() + s * buckets * cols, s, shards);
    });
    for (std::size_t s = 0; s < shards; ++s) {
      const double* matrix = partial.data() + s * buckets * cols;
      for (std::size_t c = 0; c < buckets * cols; ++c) {
        if (matrix[c] > series.skew_by_sample[c]) {
          series.skew_by_sample[c] = matrix[c];
        }
      }
    }
  } else {
    scan_rows(series.skew_by_sample.data(), 0, 1);
  }

  finish_gradient_window_summaries(series);
  return series;
}

std::vector<double> gradient_at(const sim::Simulator& sim,
                                const std::vector<std::int32_t>& ids,
                                const net::Topology& topo,
                                const std::vector<std::int32_t>& distances,
                                double t) {
  std::vector<std::int32_t> bucket_of;
  for (std::size_t b = 0; b < distances.size(); ++b) {
    const auto d = static_cast<std::size_t>(distances[b]);
    if (bucket_of.size() <= d) bucket_of.resize(d + 1, -1);
    bucket_of[d] = static_cast<std::int32_t>(b);
  }
  std::vector<double> locals(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    locals[i] = sim.local_time(ids[i], t);
  }
  std::vector<double> buckets(distances.size(), 0.0);
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    const std::vector<std::int32_t>& row = topo.distances_from(ids[i]);
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      const std::int32_t d = row[static_cast<std::size_t>(ids[j])];
      if (d < 1 || static_cast<std::size_t>(d) >= bucket_of.size()) continue;
      const std::int32_t b = bucket_of[static_cast<std::size_t>(d)];
      if (b < 0) continue;
      buckets[static_cast<std::size_t>(b)] =
          std::max(buckets[static_cast<std::size_t>(b)],
                   std::abs(locals[i] - locals[j]));
    }
  }
  return buckets;
}

double gradient_slope(const GradientSeries& series) {
  if (series.distances.size() < 2) return 0.0;
  std::vector<double> xs(series.distances.size());
  for (std::size_t b = 0; b < xs.size(); ++b) {
    xs[b] = static_cast<double>(series.distances[b]);
  }
  return util::fit_line(xs, series.max_skew).slope;
}

GradientSummary summarize_gradient(const GradientSeries& series) {
  GradientSummary summary;
  summary.distances = series.distances;
  summary.max_skew = series.max_skew;
  summary.mean_skew = series.mean_skew;
  summary.p99_skew = series.p99_skew;
  summary.frontier = series.frontier;
  summary.pair_count = series.pair_count;
  summary.slope = gradient_slope(series);
  summary.diameter = series.diameter;
  return summary;
}

bool gradient_summaries_identical(const GradientSummary& a,
                                  const GradientSummary& b) {
  return a.distances == b.distances && a.max_skew == b.max_skew &&
         a.mean_skew == b.mean_skew && a.p99_skew == b.p99_skew &&
         a.frontier == b.frontier && a.pair_count == b.pair_count &&
         a.slope == b.slope && a.diameter == b.diameter;
}

}  // namespace wlsync::analysis
