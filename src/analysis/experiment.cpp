#include "analysis/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "baselines/averaging_rounds.h"
#include "baselines/hssd.h"
#include "baselines/srikanth_toueg.h"
#include "core/fastpath.h"
#include "core/reintegration.h"
#include "core/startup.h"
#include "engine/pdes.h"
#include "net/partition.h"
#include "proc/adversaries.h"
#include "util/rng.h"

namespace wlsync::analysis {

namespace {

std::unique_ptr<sim::DelayModel> build_delay(DelayKind kind,
                                             const core::Params& p,
                                             util::Rng& rng) {
  switch (kind) {
    case DelayKind::kUniform:
      return sim::make_uniform_delay(p.delta, p.eps);
    case DelayKind::kFast:
      return sim::make_extreme_delay(p.delta, p.eps, /*fast=*/true);
    case DelayKind::kSlow:
      return sim::make_extreme_delay(p.delta, p.eps, /*fast=*/false);
    case DelayKind::kPerLink:
      return sim::make_per_link_delay(p.delta, p.eps, rng.fork(11));
    case DelayKind::kSplit:
      return sim::make_split_delay(p.delta, p.eps, p.n / 2);
    case DelayKind::kExpTrunc:
      return sim::make_trunc_exp_delay(p.delta, p.eps);
  }
  throw std::logic_error("unknown DelayKind");
}

std::unique_ptr<clk::DriftModel> build_drift(DriftKind kind,
                                             const core::Params& p,
                                             double period, std::int32_t id,
                                             util::Rng& rng) {
  switch (kind) {
    case DriftKind::kNone:
      return clk::make_constant(1.0);
    case DriftKind::kExtremal:
      return clk::make_extremal(p.rho, period, /*start_fast=*/(id % 2) == 0);
    case DriftKind::kPiecewise:
      return clk::make_piecewise_uniform(p.rho, period,
                                         rng.fork(100 + static_cast<std::uint64_t>(id)));
    case DriftKind::kRandomWalk:
      return clk::make_random_walk(p.rho, period, p.rho / 4.0,
                                   rng.fork(200 + static_cast<std::uint64_t>(id)));
  }
  throw std::logic_error("unknown DriftKind");
}

/// The Welch-Lynch configuration a spec resolves to — shared between
/// build_algorithm and the churn routing (ChurnProcess wraps the same
/// algorithm the static processes run).
core::WelchLynchConfig make_wl_config(const RunSpec& spec) {
  core::WelchLynchConfig config;
  config.params = spec.params;
  config.averaging = spec.averaging;
  config.k_exchanges = spec.k_exchanges;
  config.stagger = spec.stagger;
  config.amortize = spec.amortize;
  config.ingest = spec.ingest;
  return config;
}

proc::ProcessPtr build_algorithm(const RunSpec& spec) {
  switch (spec.algo) {
    case Algo::kWelchLynch:
      return std::make_unique<core::WelchLynchProcess>(make_wl_config(spec));
    case Algo::kLM: {
      const double delta_max =
          spec.lm_delta_max > 0.0
              ? spec.lm_delta_max
              : 4.0 * (spec.params.beta +
                       static_cast<double>(spec.params.n) * spec.params.eps);
      return std::make_unique<baselines::InteractiveConvergenceProcess>(
          spec.params, delta_max, spec.ingest);
    }
    case Algo::kST:
      return std::make_unique<baselines::SrikanthTouegProcess>(spec.params,
                                                               spec.ingest);
    case Algo::kMS: {
      const double tau = spec.ms_tau > 0.0
                             ? spec.ms_tau
                             : 4.0 * (spec.params.beta + 2.0 * spec.params.eps);
      return std::make_unique<baselines::MahaneySchneiderProcess>(
          spec.params, tau, spec.ingest);
    }
    case Algo::kPlainMean:
      return std::make_unique<baselines::PlainMeanProcess>(spec.params,
                                                           spec.ingest);
    case Algo::kHSSD:
      return std::make_unique<baselines::HssdProcess>(spec.params);
  }
  throw std::logic_error("unknown Algo");
}

/// Spec-level fast-path eligibility (core/fastpath.h documents the system-
/// level half, re-verified by RoundFastPath::ineligible_reason).  Returns
/// nullptr when eligible.
const char* fastpath_spec_block(const RunSpec& spec) {
  if (!spec.dynamics.empty()) {
    // The round loop batches whole exchanges against a FIXED neighbor
    // structure; a schedule that rewires the graph (or churns membership)
    // mid-run would silently execute on the stale one.  Refuse by name —
    // never run a dynamic scenario on the static fast path.
    return "dynamic-topology schedule present (net/dynamics.h)";
  }
  if (spec.algo != Algo::kWelchLynch) return "algo is not Welch-Lynch";
  if (spec.ingest != proc::IngestMode::kArena) return "legacy arrival ingestion";
  const bool faults = !spec.fault_mix.empty() ||
                      (spec.fault != FaultKind::kNone && spec.fault_count > 0);
  if (faults) {
    // Fault-isolating region mode (core/fastpath.h): needs an unstaggered
    // run on a sparse exchange graph — on the full mesh every honest
    // process neighbors the adversary, so no fast region exists.  (Whether
    // the adversaries' actual placement leaves a nonempty honest remainder
    // is a system-level question; ineligible_reason re-checks it.)
    if (spec.stagger > 0.0) return "staggered broadcasts with faults present";
    if (spec.topology.kind == net::TopologyKind::kFullMesh) {
      return "adversary neighborhood covers the exchange graph";
    }
  }
  if (spec.nic.has_value()) return "Section 9.3 NIC ingress model engaged";
  if (!spec.retain_history) {
    // Bounded-memory observation truncates clock segments behind the
    // drained frontier; the batched delivery kernel still reads segments
    // at delivery times that can precede that frontier.
    return "bounded-memory observation (retain_history = false)";
  }
  return nullptr;
}

/// Spec-level PDES eligibility; the engine-level half is
/// engine::PdesEngine::ineligible_reason (delay floors, observer, partition
/// shape).  Returns nullptr when eligible.
const char* pdes_spec_block(const RunSpec& spec) {
  if (!spec.dynamics.empty()) {
    // The shard cut is computed once from the start topology; a schedule
    // that rewires the graph would invalidate lane ownership and the
    // lookahead floor mid-epoch.  Refuse by name, like the fast path.
    return "dynamic-topology schedule present (net/dynamics.h)";
  }
  if (spec.observe) {
    // The streaming observer is a single-threaded accumulator wired to the
    // one global event order; lanes advance time independently.
    return "streaming observation (single-threaded API)";
  }
  return nullptr;
}

}  // namespace

Experiment::Experiment(RunSpec spec) : spec_(std::move(spec)) { build(); }
Experiment::~Experiment() = default;

const net::Topology& Experiment::topology() {
  if (!topo_built_) {
    topo_ = net::build_topology(spec_.topology, spec_.params.n);
    topo_built_ = true;
  }
  return topo_;
}

void Experiment::build() {
  const core::Params& p = spec_.params;
  if (spec_.mode != RunMode::kMaintenance) {
    throw std::invalid_argument(
        "Experiment: only RunMode::kMaintenance builds a maintenance "
        "system; dispatch kStartup / kReintegration through analysis::run");
  }
  const bool dynamic = !spec_.dynamics.empty();
  if (dynamic) {
    if (spec_.algo != Algo::kWelchLynch) {
      throw std::invalid_argument(
          "RunSpec: dynamics schedules require Algo::kWelchLynch (the only "
          "algorithm with dynamic neighbor-view resync)");
    }
    // Churn needs a dead window of 2P so stale WL timers expire before the
    // reintegration procedure wakes (same bound run_reintegration enforces).
    spec_.dynamics.validate(p.n, 2.0 * p.P);
  }
  util::Rng rng(spec_.seed);

  sim::SimConfig sim_config;
  sim_config.delta = p.delta;
  sim_config.eps = p.eps;
  sim_config.seed = rng.fork(1)();
  sim_config.nic = spec_.nic;
  sim_config.scheduler = spec_.scheduler;
  sim_config.batch_fanout = spec_.batch_fanout;
  if (spec_.max_events > 0) sim_config.max_events = spec_.max_events;
  if (spec_.topology.kind != net::TopologyKind::kFullMesh ||
      (dynamic && spec_.dynamics.topology_changing())) {
    // Full mesh stays on the implicit fast path (no adjacency storage) —
    // unless the schedule mutates the graph, which needs an explicit
    // adjacency to edit.  Construction runs once, through topology(); the
    // simulator gets its own copy (distance-cache state is not shared
    // with topo_).
    sim_config.topology = topology();
  }
  util::Rng delay_rng = rng.fork(2);
  sim_ = std::make_unique<sim::Simulator>(sim_config,
                                          build_delay(spec_.delay, p, delay_rng));
  sim_->add_trace_sink(&trace_);

  // Faulty roster: either the homogeneous (fault, fault_count) pair or the
  // heterogeneous fault_mix.  Faulty processes occupy the highest ids.
  std::vector<FaultKind> roster;
  if (!spec_.fault_mix.empty()) {
    for (const auto& entry : spec_.fault_mix) {
      for (std::int32_t i = 0; i < entry.count; ++i) roster.push_back(entry.kind);
    }
  } else if (spec_.fault != FaultKind::kNone) {
    roster.assign(static_cast<std::size_t>(spec_.fault_count), spec_.fault);
  }
  const auto fault_count = static_cast<std::int32_t>(roster.size());
  const std::int32_t honest_count = p.n - fault_count;
  if (honest_count < 1) throw std::invalid_argument("no honest processes");

  // Which positions the roster occupies.  kTrailing reproduces the
  // historical highest-ids layout exactly (it must: every pre-placement
  // regression pin depends on it); positional kinds map the roster onto the
  // exchange graph (proc/placement.h), seeded from the spec seed alone so
  // placement is as reproducible as the trial itself.
  std::vector<std::int32_t> fault_ordinal(static_cast<std::size_t>(p.n), -1);
  if (!spec_.placement_ids.empty()) {
    // Explicit positions override the placement policy entirely (the
    // adaptive adversary's re-placement path).
    if (static_cast<std::int32_t>(spec_.placement_ids.size()) != fault_count) {
      throw std::invalid_argument(
          "RunSpec: placement_ids size must equal the resolved fault count");
    }
    for (std::int32_t k = 0; k < fault_count; ++k) {
      const std::int32_t id = spec_.placement_ids[static_cast<std::size_t>(k)];
      if (id < 0 || id >= p.n) {
        throw std::invalid_argument("RunSpec: placement_ids id out of range");
      }
      if (fault_ordinal[static_cast<std::size_t>(id)] >= 0) {
        throw std::invalid_argument("RunSpec: placement_ids has duplicates");
      }
      fault_ordinal[static_cast<std::size_t>(id)] = k;
    }
  } else if (spec_.placement == proc::PlacementKind::kTrailing) {
    for (std::int32_t k = 0; k < fault_count; ++k) {
      fault_ordinal[static_cast<std::size_t>(honest_count + k)] = k;
    }
  } else {
    const std::vector<std::int32_t> placed =
        proc::place_faults(topology(), spec_.placement, fault_count, spec_.seed);
    for (std::int32_t k = 0; k < fault_count; ++k) {
      fault_ordinal[static_cast<std::size_t>(placed[static_cast<std::size_t>(k)])] = k;
    }
  }
  // Positional adversary mode engages for explicit ids exactly as for the
  // positional placement kinds (neighbor-scoped two-faced attacks).
  const bool positional = !spec_.placement_ids.empty() ||
                          spec_.placement != proc::PlacementKind::kTrailing;

  // Churn roster (net/dynamics.h leave/rejoin events): churned processes
  // must be honest algorithm instances — a Byzantine process has no state
  // worth crashing — and are routed through a ChurnProcess below.
  const auto churn = net::churn_intervals(spec_.dynamics);
  for (const auto& [pid, windows] : churn) {
    (void)windows;
    if (fault_ordinal[static_cast<std::size_t>(pid)] >= 0) {
      throw std::invalid_argument(
          "RunSpec: dynamics churn ids must be disjoint from the Byzantine "
          "roster");
    }
  }

  // Nonfaulty STARTs spread over [0, S] along the real-time axis (A4);
  // the extremes are pinned so the configured spread is exact.
  const double spread =
      spec_.initial_spread < 0.0 ? 0.9 * p.beta : spec_.initial_spread;
  util::Rng start_rng = rng.fork(3);
  std::vector<double> starts(static_cast<std::size_t>(honest_count));
  for (std::size_t i = 0; i < starts.size(); ++i) {
    starts[i] = start_rng.uniform(0.0, spread);
  }
  if (!starts.empty()) starts.front() = 0.0;
  if (starts.size() > 1) starts[1] = spread;

  util::Rng clock_rng = rng.fork(4);
  // Self-stabilization workload (Khanchandani–Lenzen overlay): honest
  // processes start from ARBITRARY logical-clock state — CORR offset
  // uniform in [0, spread) on top of the aligned value.  The fork is taken
  // only when engaged, so every spread = 0 run draws exactly the
  // historical stream (bit-identity preserved).
  std::optional<util::Rng> arb_rng;
  if (spec_.initial_clock_spread > 0.0) arb_rng.emplace(rng.fork(5));
  tmin0_ = 1e300;
  tmax0_ = -1e300;
  honest_.clear();
  std::int32_t honest_ordinal = 0;
  for (std::int32_t id = 0; id < p.n; ++id) {
    const std::int32_t ordinal = fault_ordinal[static_cast<std::size_t>(id)];
    auto clock = std::make_unique<clk::PhysicalClock>(
        build_drift(spec_.drift, p, spec_.drift_period, id, clock_rng),
        /*offset=*/clock_rng.uniform(0.0, 100.0), p.rho);

    if (ordinal < 0) {
      const double s = starts[static_cast<std::size_t>(honest_ordinal++)];
      // Choose CORR so the initial logical clock reads T0 exactly at the
      // START time: c0_p(T0) = s, i.e. the A4 wake-up condition.
      double corr0 = p.T0 - clock->now(s);
      if (arb_rng) {
        corr0 += arb_rng->uniform(0.0, spec_.initial_clock_spread);
      }
      const auto windows = churn.find(id);
      if (windows != churn.end()) {
        // Churned: an honest algorithm instance that crashes and rejoins
        // per the schedule.  Registered faulty (it is one of the f faults
        // while down, and the real-time routing needs AdversaryContext)
        // and excluded from honest_ — measurements quantify the processes
        // that never left.  Start draws are consumed identically either
        // way, so the un-churned remainder's physics only change through
        // the schedule itself.
        std::vector<core::ChurnProcess::Downtime> downs;
        downs.reserve(windows->second.size());
        for (const net::ChurnInterval& w : windows->second) {
          downs.push_back({w.leave, w.rejoin});
        }
        sim_->add_process(std::make_unique<core::ChurnProcess>(
                              make_wl_config(spec_), std::move(downs)),
                          std::move(clock), corr0, /*faulty=*/true,
                          /*start=*/s);
        continue;
      }
      honest_.push_back(id);
      tmin0_ = std::min(tmin0_, s);
      tmax0_ = std::max(tmax0_, s);
      sim_->add_process(build_algorithm(spec_), std::move(clock), corr0,
                        /*faulty=*/false, /*start=*/s);
      continue;
    }

    // Byzantine processes.
    switch (roster[static_cast<std::size_t>(ordinal)]) {
      case FaultKind::kSilent:
        sim_->add_process(std::make_unique<proc::SilentAdversary>(),
                          std::move(clock), 0.0, true, /*start=*/-1.0);
        break;
      case FaultKind::kSpam: {
        proc::SpamAdversary::Config config;
        config.period = p.P / 10.0;
        config.burst = 3;
        config.tag = core::kTimeTag;
        config.seed = rng.fork(500 + static_cast<std::uint64_t>(id))();
        sim_->add_process(std::make_unique<proc::SpamAdversary>(config),
                          std::move(clock), 0.0, true, /*start=*/0.0);
        break;
      }
      case FaultKind::kTwoFaced: {
        proc::TwoFacedAdversary::Config config;
        config.pivot = honest_count / 2;
        config.honest_end = honest_count;
        config.tag = core::kTimeTag;
        config.P = p.P;
        config.delta = p.delta;
        config.beta = p.beta;
        // Strike round 0 too: the A4 schedule (tmin0 = 0, label T0) is known
        // to an omniscient adversary.
        config.first_tmin = 0.0;
        config.first_label = p.T0;
        // Co-conspirators bracket different in-span positions so reduce()
        // cannot clip them all from one end.
        config.early_frac = 0.08 + 0.10 * static_cast<double>(ordinal);
        config.late_frac = 0.92 - 0.10 * static_cast<double>(ordinal);
        if (positional) {
          // Positional mode: lie only to the honest closed neighborhood,
          // one forged face per neighbor (proc/adversaries.h).  The id
          // ranges above assume the trailing layout and are ignored once
          // the target lists are set.
          std::vector<std::int32_t> victims;
          for (std::int32_t q : topology().neighbors(id)) {
            if (q != id && fault_ordinal[static_cast<std::size_t>(q)] < 0) {
              victims.push_back(q);
            }
          }
          if (victims.empty()) {
            // Every neighbor is a fellow fault: there is no one to lie to,
            // and empty target lists would silently re-enable the
            // full-mesh pivot attack.  A positional adversary with no
            // honest neighborhood is behaviourally silent.
            sim_->add_process(std::make_unique<proc::SilentAdversary>(),
                              std::move(clock), 0.0, true, /*start=*/-1.0);
            break;
          }
          const std::size_t half = victims.size() / 2;
          config.early_targets.assign(victims.begin(),
                                      victims.begin() + static_cast<std::ptrdiff_t>(half));
          config.late_targets.assign(victims.begin() + static_cast<std::ptrdiff_t>(half),
                                     victims.end());
          config.per_target_spread = true;
        }
        sim_->add_process(std::make_unique<proc::TwoFacedAdversary>(config),
                          std::move(clock), 0.0, true, /*start=*/0.0);
        break;
      }
      case FaultKind::kLiar: {
        // An honest algorithm instance whose START (and hence every round)
        // runs liar_offset real seconds late: its messages arrive at
        // plausible-looking but wrong times every round, the classic
        // "consistently wrong clock" failure.
        const double s = spec_.liar_offset;
        const double corr0 = p.T0 - clock->now(s);
        sim_->add_process(build_algorithm(spec_), std::move(clock), corr0,
                          /*faulty=*/true, /*start=*/s);
        break;
      }
      case FaultKind::kNone:
        break;
    }
  }
  if (dynamic) {
    // Install the schedule (tier-2 scenario events) and wake every churned
    // process at its rejoin instants — the second START routes it into the
    // Section 9.1 reintegration procedure (ChurnProcess).
    sim_->set_dynamics(spec_.dynamics);
    for (const auto& [pid, windows] : churn) {
      for (const net::ChurnInterval& w : windows) {
        if (w.rejoin < net::kNeverRejoins) sim_->schedule_start(pid, w.rejoin);
      }
    }
  }
  // Pre-size the CORR logs for the configured run length (one adjustment
  // per exchange, plus slack for the partial round the horizon affords):
  // steady-state recording then never reallocates, so the fast path's
  // round loop stays allocation-free (bench_micro gates on this).
  sim_->reserve_history(static_cast<std::size_t>(spec_.rounds + 2) *
                        static_cast<std::size_t>(spec_.k_exchanges));
}

double Experiment::horizon() const {
  const core::Params& p = spec_.params;
  const core::Derived d = core::derive(p);
  return tmax0_ +
         static_cast<double>(spec_.rounds + 1) * p.P * (1.0 + 2.0 * p.rho) +
         2.0 * d.window + 10.0 * p.delta;
}

ObserveSpec Experiment::make_observe_spec() {
  const core::Params& p = spec_.params;
  const core::Derived d = core::derive(p);
  ObserveSpec ospec;
  ospec.ids = honest_;
  ospec.params = p;
  ospec.tmin0 = tmin0_;
  ospec.tmax0 = tmax0_;
  ospec.horizon = horizon();
  // The steady-state anchor the post-hoc path lands on when the run
  // completes its configured rounds: the horizon affords one extra full
  // round past spec.rounds, so last_complete_round = rounds + 1 and the
  // post-hoc midpoint is (rounds + 1) / 2.
  ospec.anchor_round = (spec_.rounds + 1) / 2;
  ospec.max_rounds = spec_.rounds;
  ospec.skew_dt = spec_.observe_dt > 0.0 ? spec_.observe_dt : p.P / 25.0;
  ospec.validity_dt = p.P / 10.0;
  ospec.validity_t0 = tmax0_ + d.window;
  ospec.gradient = spec_.measure_gradient;
  if (spec_.measure_gradient) ospec.topology = &topology();
  ospec.truncate = !spec_.retain_history;
  ospec.skew_hist_max = 4.0 * d.gamma;
  return ospec;
}

RunResult Experiment::run() {
  const core::Params& p = spec_.params;
  const core::Derived d = core::derive(p);
  if (!spec_.retain_history && !spec_.observe) {
    throw std::invalid_argument(
        "RunSpec: retain_history = false requires observe = true (with "
        "neither the streaming accumulators nor the post-hoc history, "
        "nothing could measure the run)");
  }

  RunResult result;
  result.honest = honest_;
  result.gamma_bound = d.gamma;
  result.adj_bound = d.adj_bound;
  result.tmin0 = tmin0_;
  result.tmax0 = tmax0_;

  const double horizon = this->horizon();

  // Streaming mode: attach the in-run observer before any event fires.
  // The guard detaches on every exit path — the observer dies with this
  // frame, and a simulator that outlives it (tests drive simulator()
  // directly) must never hold the stale pointer.
  std::unique_ptr<StreamingObserver> observer;
  struct ObserverGuard {
    sim::Simulator* sim = nullptr;
    ~ObserverGuard() {
      if (sim != nullptr) sim->set_observer(nullptr);
    }
  } observer_guard;
  if (spec_.observe) {
    observer = std::make_unique<StreamingObserver>(*sim_, make_observe_spec());
    sim_->set_observer(observer.get());
    observer_guard.sim = sim_.get();
  }

  const auto engine_start = std::chrono::steady_clock::now();

  // Round-synchronous fast path: advance fault-free Welch-Lynch exchanges
  // past the event queue, then let run_until finish whatever the fast path
  // handed back (everything, when it never engaged).  Bit-identical either
  // way — see core/fastpath.h for the replay protocol.
  if (spec_.engine == EngineMode::kFastpath ||
      spec_.engine == EngineMode::kAuto) {
    const char* blocked = fastpath_spec_block(spec_);
    if (blocked == nullptr) {
      blocked = core::RoundFastPath::ineligible_reason(*sim_);
    }
    if (blocked == nullptr) {
      core::RoundFastPath fastpath(*sim_);
      fastpath.run(horizon);
      result.fastpath_engaged = fastpath.stats().engaged;
      result.fastpath_exchanges = fastpath.stats().exchanges;
      result.fastpath_rearms = fastpath.stats().rearms;
      result.fastpath_fast_count = fastpath.stats().fast_count;
      result.fastpath_region_events = fastpath.stats().region_events;
      if (!fastpath.stats().engaged) {
        // Ran but never passed entry validation — the handoff string says
        // why (e.g. "unexpected initial queue").
        result.fastpath_refusal = fastpath.stats().handoff;
      }
    } else if (spec_.engine == EngineMode::kFastpath) {
      throw std::invalid_argument(
          std::string("RunSpec: engine = kFastpath but the spec is "
                      "ineligible: ") +
          blocked);
    } else {
      result.fastpath_refusal = blocked;
    }
  }

  // Conservative PDES (engine/pdes.h): shard the topology, run the epoch
  // loop with one worker per shard, then let run_until below finish the
  // (empty past the horizon) remainder serially.  kAuto reaches here when
  // the fast path didn't engage; pdes_workers >= 2 pins the shard count,
  // <= 0 (the default) asks the auto-tuner, and exactly 1 opts kAuto out
  // (single-shard PDES is pure overhead).  kPdes asserts eligibility,
  // including auto-tune declining.  Per-lane RoundTraces catch each
  // shard's annotations and fold back into trace_ so every measurement
  // below reads the same trace a serial run would have built.
  const bool pdes_auto_tune = spec_.pdes_workers <= 0;
  if (spec_.engine == EngineMode::kPdes ||
      (spec_.engine == EngineMode::kAuto && !result.fastpath_engaged &&
       (spec_.pdes_workers >= 2 || pdes_auto_tune))) {
    const char* blocked = pdes_spec_block(spec_);
    std::string blocked_buf;
    std::int32_t workers = spec_.pdes_workers;
    if (blocked == nullptr && pdes_auto_tune) {
      const engine::PdesAutoChoice choice =
          engine::choose_pdes_workers(topology(), spec_.seed);
      if (choice.workers >= 2) {
        workers = choice.workers;
      } else {
        blocked_buf = "auto-tune declined: " + choice.reason;
        blocked = blocked_buf.c_str();
      }
    }
    net::Partition part;
    if (blocked == nullptr) {
      part = net::partition_topology(topology(), workers, spec_.seed);
      if (workers >= 2 && part.k < 2) {
        // A collapsed partition silently serialized (and under-reported)
        // before: surface it like any other refusal.
        blocked = "partition collapsed to 1 shard";
      } else {
        blocked = engine::PdesEngine::ineligible_reason(*sim_, part);
      }
    }
    if (blocked == nullptr) {
      std::vector<RoundTrace> lane_traces(static_cast<std::size_t>(part.k));
      std::vector<sim::TraceSink*> lane_sinks;
      lane_sinks.reserve(lane_traces.size());
      for (RoundTrace& lane_trace : lane_traces) {
        lane_sinks.push_back(&lane_trace);
      }
      engine::PdesOptions options;
      options.adaptive = spec_.pdes_adaptive;
      engine::PdesEngine pdes(*sim_, part, lane_sinks, options);
      pdes.run_until(horizon);
      trace_.absorb_all(lane_traces);
      result.pdes_epochs = pdes.stats().epochs;
      result.pdes_stalls = pdes.stats().stalls;
      result.pdes_workers_used = pdes.stats().shards;
    } else if (spec_.engine == EngineMode::kPdes) {
      throw std::invalid_argument(
          std::string("RunSpec: engine = kPdes but the spec is "
                      "ineligible: ") +
          blocked);
    } else {
      result.pdes_refusal = blocked;
    }
  }

  sim_->run_until(horizon);
  result.engine_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    engine_start)
          .count();
  result.t_end = sim_->current_time();
  result.messages = sim_->messages_sent();
  result.dynamics_applied = sim_->dynamics_applied();
  result.nic_dropped = sim_->nic_dropped();
  result.nic = summarize_nic(*sim_);
  for (std::int32_t id = 0; id < sim_->process_count(); ++id) {
    if (const auto* wl =
            dynamic_cast<const core::WelchLynchProcess*>(&sim_->process(id))) {
      result.starved_updates += wl->starved_updates();
    }
  }

  StreamingSummary streamed;
  if (observer) streamed = observer->finalize(result.t_end);

  // Per-round begin spreads and skews at round begins.  Spreads come from
  // the (always retained) round trace; the skew at each round's last begin
  // comes from the streaming round-boundary accumulator in observe mode
  // and from the post-hoc scan otherwise — identical doubles either way.
  const std::int32_t last_round = trace_.last_complete_round(honest_);
  result.completed_rounds = last_round + 1;
  for (std::int32_t r = 0; r <= last_round; ++r) {
    const auto times = trace_.begin_times(r, honest_);
    if (times.empty()) break;
    result.begin_spread.push_back(trace_.begin_spread(r, honest_));
    if (observer) {
      const auto idx = static_cast<std::size_t>(r);
      if (idx >= streamed.skew_at_round.size() ||
          std::isnan(streamed.skew_at_round[idx])) {
        // The observer and the RoundTrace consume the same kRoundBegin
        // annotations; a round the trace completed but the observer never
        // saw means the engines desynchronized — fail loudly rather than
        // fabricate a measurement.
        throw std::logic_error(
            "Experiment: streaming observer missed a round the trace "
            "completed (round " + std::to_string(r) + ")");
      }
      result.skew_at_round.push_back(streamed.skew_at_round[idx]);
    } else {
      const double at = *std::max_element(times.begin(), times.end());
      result.skew_at_round.push_back(skew_at(*sim_, honest_, at));
    }
  }
  result.max_abs_adj = trace_.max_abs_adjustment(honest_, 0);

  // Stabilization time (the Khanchandani–Lenzen workload's headline
  // number, computed for every maintenance run): the first round whose
  // ENTIRE skew_at_round suffix stays within the threshold — a suffix
  // condition, not a first-crossing, so a transient dip below the bound
  // does not count as stabilized.  The clock starts at tmax0 (the last
  // honest START), matching the B-series convention.
  {
    const double thresh = spec_.stabilize_threshold > 0.0
                              ? spec_.stabilize_threshold
                              : 2.0 * d.gamma;
    std::int32_t stab = -1;
    for (auto r = static_cast<std::int32_t>(result.skew_at_round.size()) - 1;
         r >= 0; --r) {
      if (result.skew_at_round[static_cast<std::size_t>(r)] <= thresh) {
        stab = r;
      } else {
        break;
      }
    }
    if (stab >= 0) {
      result.stabilized_round = stab;
      const auto times = trace_.begin_times(stab, honest_);
      if (!times.empty()) {
        result.stabilization_time =
            *std::max_element(times.begin(), times.end()) - tmax0_;
      }
    }
  }

  if (observer) {
    // Streaming measurement: the observer drained the same sample grids
    // the post-hoc calls below walk, event-driven during the run.
    if (spec_.measure_gradient) {
      result.gradient = streamed.gradient;
      result.gamma_measured = result.gradient.far_skew();
    } else {
      result.gamma_measured = streamed.skew.max_skew;
    }
    result.final_skew = streamed.final_skew;
    result.validity = streamed.validity;
    result.observe = streamed.stats;
  } else {
    // Steady-state agreement: sample from the midpoint round onward.
    double t_steady = tmax0_ + d.window;
    if (last_round >= 0) {
      const auto mid_times = trace_.begin_times(last_round / 2, honest_);
      if (!mid_times.empty()) {
        t_steady = *std::max_element(mid_times.begin(), mid_times.end());
      }
    }
    if (spec_.measure_gradient) {
      // One grid walk serves both reductions: the gradient buckets every
      // honest pair over the same (t_steady, t_end, P/25) window
      // skew_series would sample, and its far frontier IS the global skew
      // — the max pairwise |L_i - L_j| is attained by the (max, min)
      // pair, so the values coincide exactly.  The summary drops the
      // per-sample matrix so RunResults stay cheap to copy across
      // ParallelRunner sweeps.
      result.gradient = summarize_gradient(gradient_series(
          *sim_, honest_, topology(), t_steady, result.t_end, p.P / 25.0));
      result.gamma_measured = result.gradient.far_skew();
    } else {
      result.gamma_measured =
          skew_series(*sim_, honest_, t_steady, result.t_end, p.P / 25.0)
              .max_skew;
    }
    result.final_skew = skew_at(*sim_, honest_, result.t_end);
    // Validity envelope (Theorem 19) over the settled portion of the run.
    result.validity = check_validity(*sim_, honest_, p, tmin0_, tmax0_,
                                     tmax0_ + d.window, result.t_end,
                                     p.P / 10.0);
  }
  result.diverged = !(result.gamma_measured <
                      std::max(100.0 * d.gamma, 1.0)) ||
                    result.completed_rounds < spec_.rounds / 2;
  return result;
}

// ------------------------------------------------------------- start-up ---

namespace {

StartupResult run_startup_impl(const StartupSpec& spec) {
  const core::Params& p = spec.params;
  util::Rng rng(spec.seed);

  sim::SimConfig sim_config;
  sim_config.delta = p.delta;
  sim_config.eps = p.eps;
  sim_config.seed = rng.fork(1)();
  util::Rng delay_rng = rng.fork(2);
  sim::Simulator sim(sim_config, build_delay(spec.delay, p, delay_rng));
  RoundTrace trace;
  sim.add_trace_sink(&trace);

  const std::int32_t fault_count =
      spec.fault == FaultKind::kNone ? 0 : spec.fault_count;
  const std::int32_t honest_count = p.n - fault_count;
  std::vector<std::int32_t> honest;

  util::Rng clock_rng = rng.fork(4);
  for (std::int32_t id = 0; id < p.n; ++id) {
    const bool faulty = id >= honest_count;
    auto clock = std::make_unique<clk::PhysicalClock>(
        build_drift(spec.drift, p, 2.0, id, clock_rng),
        clock_rng.uniform(0.0, 100.0), p.rho);
    if (!faulty) {
      core::StartupConfig config;
      config.params = p;
      config.handoff_rounds = spec.handoff ? spec.rounds : 0;
      // Clocks are NOT initially synchronized: CORR is arbitrary.
      const double corr0 =
          clock_rng.uniform(0.0, spec.initial_clock_spread) - clock->now(0.0);
      honest.push_back(id);
      sim.add_process(std::make_unique<core::StartupProcess>(config),
                      std::move(clock), corr0, false,
                      /*start=*/clock_rng.uniform(0.0, p.delta));
    } else if (spec.fault == FaultKind::kSilent) {
      sim.add_process(std::make_unique<proc::SilentAdversary>(),
                      std::move(clock), 0.0, true, -1.0);
    } else {
      proc::SpamAdversary::Config config;
      config.period = p.delta;
      config.burst = 2;
      config.tag = core::kTimeTag;
      config.seed = rng.fork(600 + static_cast<std::uint64_t>(id))();
      sim.add_process(std::make_unique<proc::SpamAdversary>(config),
                      std::move(clock), 0.0, true, 0.0);
    }
  }

  // Each start-up round takes at most ~2 delta + a few eps plus the READY
  // exchange; budget generously.
  const double round_budget = 4.0 * (2.0 * p.delta + 8.0 * p.eps) + 6.0 * p.delta;
  const double horizon =
      static_cast<double>(spec.rounds + 2) * round_budget +
      (spec.handoff ? 3.0 * p.P : 0.0) + 1.0;

  // Streaming mode: only the round-boundary stream is consumed (it feeds
  // b_series below).  The anchor round sits past anything the run can
  // complete, so the skew grid collapses to finalize's endpoint sample,
  // and the validity window opens past the horizon so it never samples.
  std::unique_ptr<StreamingObserver> observer;
  struct ObserverGuard {
    sim::Simulator* sim = nullptr;
    ~ObserverGuard() {
      if (sim != nullptr) sim->set_observer(nullptr);
    }
  } observer_guard;
  if (spec.observe) {
    ObserveSpec ospec;
    ospec.ids = honest;
    ospec.params = p;
    ospec.horizon = horizon;
    ospec.anchor_round = std::numeric_limits<std::int32_t>::max();
    ospec.max_rounds = spec.rounds;
    ospec.skew_dt = round_budget;
    ospec.validity_dt = round_budget;
    ospec.validity_t0 = horizon + 1.0;
    ospec.skew_hist_max = 1.0;
    observer = std::make_unique<StreamingObserver>(sim, std::move(ospec));
    sim.set_observer(observer.get());
    observer_guard.sim = &sim;
  }

  sim.run_until(horizon);

  StreamingSummary streamed;
  if (observer) streamed = observer->finalize(sim.current_time());

  StartupResult result;
  if (observer) result.observe = streamed.stats;
  result.round_slack = core::startup_round_slack(p.rho, p.delta, p.eps);
  result.limit = core::startup_limit(p.rho, p.delta, p.eps);

  // Per-round closing skews B(r), evaluated at each round's last honest
  // begin — from the streaming round-boundary accumulator in observe mode,
  // from the post-hoc scan otherwise.  Identical doubles either way (the
  // observer's eval_round_skew folds the same walkers in the same id order
  // at the same instant; pinned by tests/startup_test.cpp).
  const std::int32_t last = trace.last_complete_round(honest);
  for (std::int32_t r = 0; r <= last && r < spec.rounds; ++r) {
    const auto times = trace.begin_times(r, honest);
    if (times.empty()) break;
    if (observer) {
      const auto idx = static_cast<std::size_t>(r);
      if (idx >= streamed.skew_at_round.size() ||
          std::isnan(streamed.skew_at_round[idx])) {
        // Both consumers read the same kRoundBegin annotations; a round the
        // trace completed but the observer never saw means they
        // desynchronized — fail loudly rather than fabricate a measurement.
        throw std::logic_error(
            "run_startup: streaming observer missed a round the trace "
            "completed (round " + std::to_string(r) + ")");
      }
      result.b_series.push_back(streamed.skew_at_round[idx]);
    } else {
      const double at = *std::max_element(times.begin(), times.end());
      result.b_series.push_back(skew_at(sim, honest, at));
    }
  }
  result.final_b = result.b_series.empty() ? 1e300 : result.b_series.back();

  if (spec.handoff) {
    bool all = true;
    for (std::int32_t id : honest) {
      auto& process = dynamic_cast<core::StartupProcess&>(sim.process(id));
      all = all && process.handed_off();
    }
    result.handoff_done = all;
    if (all) {
      result.post_handoff_skew =
          skew_series(sim, honest, sim.current_time() - p.P, sim.current_time(),
                      p.P / 25.0)
              .max_skew;
    }
  }
  return result;
}

}  // namespace

// -------------------------------------------------------- reintegration ---

namespace {

/// Composite for the crash/repair lifecycle: honest Welch-Lynch until
/// crash_at, dead until woken by a second START, then the Section 9.1
/// reintegration procedure.
class CrashRejoinProcess final : public proc::Process {
 public:
  CrashRejoinProcess(core::WelchLynchConfig config, double crash_at)
      : crash_at_(crash_at), wl_(config), rejoin_(config) {}

  void on_start(proc::Context& ctx) override {
    const double now = proc::AdversaryContext::from(ctx).real_time();
    if (now < crash_at_) {
      wl_.on_start(ctx);
    } else if (!woken_) {
      woken_ = true;
      rejoin_.on_start(ctx);
    }
  }
  void on_timer(proc::Context& ctx, std::int32_t tag) override {
    if (route(ctx) == Route::kWl) {
      wl_.on_timer(ctx, tag);
    } else if (route(ctx) == Route::kRejoin) {
      rejoin_.on_timer(ctx, tag);
    }
  }
  void on_message(proc::Context& ctx, const sim::Message& m) override {
    if (route(ctx) == Route::kWl) {
      wl_.on_message(ctx, m);
    } else if (route(ctx) == Route::kRejoin) {
      rejoin_.on_message(ctx, m);
    }
  }

  [[nodiscard]] const core::ReintegrationProcess& rejoin() const noexcept {
    return rejoin_;
  }

 private:
  enum class Route : std::uint8_t { kWl, kDead, kRejoin };
  [[nodiscard]] Route route(proc::Context& ctx) const {
    const double now = proc::AdversaryContext::from(ctx).real_time();
    if (now < crash_at_) return Route::kWl;
    return woken_ ? Route::kRejoin : Route::kDead;
  }

  double crash_at_;
  bool woken_ = false;
  core::WelchLynchProcess wl_;
  core::ReintegrationProcess rejoin_;
};

ReintegrationResult run_reintegration_impl(const ReintegrationSpec& spec) {
  const core::Params& p = spec.params;
  const core::Derived d = core::derive(p);
  if (spec.wake_at < spec.crash_at + 2.0 * p.P) {
    throw std::invalid_argument(
        "run_reintegration: need wake_at >= crash_at + 2P so stale timers die");
  }
  util::Rng rng(spec.seed);

  sim::SimConfig sim_config;
  sim_config.delta = p.delta;
  sim_config.eps = p.eps;
  sim_config.seed = rng.fork(1)();
  util::Rng delay_rng = rng.fork(2);
  sim::Simulator sim(sim_config, build_delay(spec.delay, p, delay_rng));
  RoundTrace trace;
  sim.add_trace_sink(&trace);

  core::WelchLynchConfig wl_config;
  wl_config.params = p;

  // Process 0 is the crash/rejoin victim (registered faulty: from the
  // model's viewpoint it is one of the f faults until it rejoins).
  std::vector<std::int32_t> survivors;
  util::Rng clock_rng = rng.fork(4);
  util::Rng start_rng = rng.fork(3);
  double tmax0 = 0.0;
  for (std::int32_t id = 0; id < p.n; ++id) {
    auto clock = std::make_unique<clk::PhysicalClock>(
        build_drift(spec.drift, p, 2.0, id, clock_rng),
        clock_rng.uniform(0.0, 100.0), p.rho);
    const double s = id == 0 ? 0.0 : start_rng.uniform(0.0, 0.9 * p.beta);
    tmax0 = std::max(tmax0, s);
    const double corr0 = p.T0 - clock->now(s);
    if (id == 0) {
      sim.add_process(
          std::make_unique<CrashRejoinProcess>(wl_config, spec.crash_at),
          std::move(clock), corr0, /*faulty=*/true, /*start=*/s);
    } else {
      survivors.push_back(id);
      sim.add_process(std::make_unique<core::WelchLynchProcess>(wl_config),
                      std::move(clock), corr0, false, s);
    }
  }
  sim.schedule_start(0, spec.wake_at);

  const double horizon = tmax0 +
                         static_cast<double>(spec.rounds + 1) * p.P *
                             (1.0 + 2.0 * p.rho) +
                         2.0 * d.window + 1.0;

  // Streaming mode: the measurement window ([join + 2P, t_end]) is only
  // known once the victim rejoins, so step the run in P-sized chunks until
  // the join annotation lands in the trace, then attach an observer whose
  // skew window opens unconditionally at that instant (ObserveSpec::
  // skew_t0) and let the rest of the run stream through it.  Chunked
  // run_until is the same event sequence as one call, and every observer
  // query targets t >= join + 2P > attach time, so the mid-run attach is
  // exact (pinned bitwise by tests/reintegration_test.cpp).
  std::unique_ptr<StreamingObserver> observer;
  struct ObserverGuard {
    sim::Simulator* sim = nullptr;
    ~ObserverGuard() {
      if (sim != nullptr) sim->set_observer(nullptr);
    }
  } observer_guard;
  if (spec.observe) {
    double join_time = -1.0;
    double next = std::min(spec.wake_at, horizon);
    for (;;) {
      sim.run_until(next);
      for (const RoundEvent& join : trace.joins()) {
        if (join.pid == 0) {
          join_time = join.real_time;
          break;
        }
      }
      if (join_time >= 0.0 || next >= horizon) break;
      next = std::min(next + p.P, horizon);
    }
    if (join_time >= 0.0) {
      std::vector<std::int32_t> everyone = survivors;
      everyone.push_back(0);
      std::sort(everyone.begin(), everyone.end());
      ObserveSpec ospec;
      ospec.ids = std::move(everyone);
      ospec.params = p;
      ospec.horizon = horizon;
      ospec.skew_t0 = join_time + 2.0 * p.P;
      ospec.max_rounds = spec.rounds;
      ospec.skew_dt = p.P / 25.0;
      ospec.validity_dt = p.P / 10.0;
      ospec.validity_t0 = horizon + 1.0;  // never samples
      ospec.skew_hist_max = 4.0 * d.gamma;
      observer = std::make_unique<StreamingObserver>(sim, std::move(ospec));
      sim.set_observer(observer.get());
      observer_guard.sim = &sim;
    }
  }

  sim.run_until(horizon);

  ReintegrationResult result;
  result.beta = p.beta;
  result.gamma_bound = d.gamma;

  for (const RoundEvent& join : trace.joins()) {
    if (join.pid == 0) {
      result.rejoined = true;
      result.join_time = join.real_time;
      result.join_round = join.round;
      break;
    }
  }
  if (!result.rejoined) return result;

  // The joiner's first full round: every process (victim included) should
  // begin within beta of each other (the Section 9.1 claim).
  std::vector<std::int32_t> everyone = survivors;
  everyone.push_back(0);
  std::sort(everyone.begin(), everyone.end());
  result.spread_with_joiner =
      trace.begin_spread(result.join_round, everyone);

  // Steady skew including the joiner, from join + 2P to the end of the
  // run.  The streaming accumulators produce the identical doubles: the
  // drained grid is the same [t_check, t_end) walk plus the same endpoint
  // sample, folded over the same ids, and when the window degenerates to
  // the endpoint, final_skew IS skew_at(t_end).
  const double t_check = result.join_time + 2.0 * p.P;
  if (observer) {
    const StreamingSummary streamed = observer->finalize(sim.current_time());
    result.observe = streamed.stats;
    result.skew_after = t_check < sim.current_time() ? streamed.skew.max_skew
                                                     : streamed.final_skew;
  } else if (t_check < sim.current_time()) {
    result.skew_after = skew_series(sim, everyone, t_check, sim.current_time(),
                                    p.P / 25.0)
                            .max_skew;
  } else {
    result.skew_after = skew_at(sim, everyone, sim.current_time());
  }
  return result;
}

}  // namespace

// ---------------------------------------------------- unified entry point ---

RunResult run(const RunSpec& spec) {
  const auto wall_start = std::chrono::steady_clock::now();
  RunResult result;
  switch (spec.mode) {
    case RunMode::kMaintenance: {
      Experiment experiment(spec);
      result = experiment.run();
      break;
    }
    case RunMode::kStartup: {
      // The flat RunSpec fields map verbatim onto the historical
      // StartupSpec — including initial_clock_spread, whose RunSpec
      // default (0, aligned) differs from StartupSpec's (1.0); the
      // run_startup wrapper below copies the caller's value through
      // unchanged, so the round trip is bit-identical.
      StartupSpec s;
      s.params = spec.params;
      s.rounds = spec.rounds;
      s.handoff = spec.startup_handoff;
      s.initial_clock_spread = spec.initial_clock_spread;
      s.fault = spec.fault;
      s.fault_count = spec.fault_count;
      s.delay = spec.delay;
      s.drift = spec.drift;
      s.seed = spec.seed;
      s.observe = spec.observe;
      result.startup = run_startup_impl(s);
      break;
    }
    case RunMode::kReintegration: {
      ReintegrationSpec s;
      s.params = spec.params;
      s.crash_at = spec.crash_at;
      s.wake_at = spec.wake_at;
      s.rounds = spec.rounds;
      s.delay = spec.delay;
      s.drift = spec.drift;
      s.seed = spec.seed;
      s.observe = spec.observe;
      result.reintegration = run_reintegration_impl(s);
      break;
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

RunResult run_experiment(const RunSpec& spec) { return run(spec); }

StartupResult run_startup(const StartupSpec& spec) {
  RunSpec rs;
  rs.mode = RunMode::kStartup;
  rs.params = spec.params;
  rs.rounds = spec.rounds;
  rs.startup_handoff = spec.handoff;
  rs.initial_clock_spread = spec.initial_clock_spread;
  rs.fault = spec.fault;
  rs.fault_count = spec.fault_count;
  rs.delay = spec.delay;
  rs.drift = spec.drift;
  rs.seed = spec.seed;
  rs.observe = spec.observe;
  return *run(rs).startup;
}

ReintegrationResult run_reintegration(const ReintegrationSpec& spec) {
  RunSpec rs;
  rs.mode = RunMode::kReintegration;
  rs.params = spec.params;
  rs.crash_at = spec.crash_at;
  rs.wake_at = spec.wake_at;
  rs.rounds = spec.rounds;
  rs.delay = spec.delay;
  rs.drift = spec.drift;
  rs.seed = spec.seed;
  rs.observe = spec.observe;
  return *run(rs).reintegration;
}

}  // namespace wlsync::analysis
