#include "analysis/skew.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/params.h"

namespace wlsync::analysis {

double skew_at(const sim::Simulator& sim, const std::vector<std::int32_t>& ids,
               double t) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::int32_t id : ids) {
    const double local = sim.local_time(id, t);
    lo = std::min(lo, local);
    hi = std::max(hi, local);
  }
  return hi - lo;
}

SkewSeries skew_series(const sim::Simulator& sim,
                       const std::vector<std::int32_t>& ids, double t0,
                       double t1, double dt) {
  SkewSeries series;
  for (double t = t0; t < t1; t += dt) {
    series.times.push_back(t);
    const double skew = skew_at(sim, ids, t);
    series.skews.push_back(skew);
    series.max_skew = std::max(series.max_skew, skew);
  }
  series.times.push_back(t1);
  const double skew = skew_at(sim, ids, t1);
  series.skews.push_back(skew);
  series.max_skew = std::max(series.max_skew, skew);
  return series;
}

double crossing_time(const sim::Simulator& sim, std::int32_t id, double label,
                     double t_lo, double t_hi) {
  // Coarse forward scan for the first bracket, then bisection.  Local time
  // is piecewise monotone with bounded negative steps, so the first
  // crossing is bracketed by the first coarse sample at or above the label.
  const double step = std::max((t_hi - t_lo) / 4096.0, 1e-9);
  double prev = t_lo;
  if (sim.local_time(id, t_lo) >= label) return t_lo;
  for (double t = t_lo + step; t <= t_hi + step; t += step) {
    const double clamped = std::min(t, t_hi);
    if (sim.local_time(id, clamped) >= label) {
      double lo = prev;
      double hi = clamped;
      for (int iter = 0; iter < 64; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (sim.local_time(id, mid) >= label) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      return hi;
    }
    if (clamped >= t_hi) break;
    prev = clamped;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double label_spread(const sim::Simulator& sim,
                    const std::vector<std::int32_t>& ids, double label,
                    double t_lo, double t_hi) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::int32_t id : ids) {
    const double cross = crossing_time(sim, id, label, t_lo, t_hi);
    if (std::isnan(cross)) return std::numeric_limits<double>::quiet_NaN();
    lo = std::min(lo, cross);
    hi = std::max(hi, cross);
  }
  return hi - lo;
}

ValidityReport check_validity(const sim::Simulator& sim,
                              const std::vector<std::int32_t>& ids,
                              const core::Params& params, double tmin0,
                              double tmax0, double t_start, double t_end,
                              double dt) {
  const core::Derived derived = core::derive(params);
  ValidityReport report;
  report.max_upper_violation = -std::numeric_limits<double>::infinity();
  report.max_lower_violation = -std::numeric_limits<double>::infinity();
  double hi_slope = -std::numeric_limits<double>::infinity();
  double lo_slope = std::numeric_limits<double>::infinity();
  for (double t = t_start; t <= t_end; t += dt) {
    for (std::int32_t id : ids) {
      const double elapsed = sim.local_time(id, t) - params.T0;
      const double upper = derived.alpha2 * (t - tmin0) + derived.alpha3;
      const double lower = derived.alpha1 * (t - tmax0) - derived.alpha3;
      report.max_upper_violation =
          std::max(report.max_upper_violation, elapsed - upper);
      report.max_lower_violation =
          std::max(report.max_lower_violation, lower - elapsed);
      if (t - tmin0 > 0.0) hi_slope = std::max(hi_slope, elapsed / (t - tmin0));
      if (t - tmax0 > 0.0) lo_slope = std::min(lo_slope, elapsed / (t - tmax0));
    }
  }
  report.holds =
      report.max_upper_violation <= 0.0 && report.max_lower_violation <= 0.0;
  report.measured_hi_slope = hi_slope;
  report.measured_lo_slope = lo_slope;
  return report;
}

}  // namespace wlsync::analysis
