#include "analysis/skew.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/measure.h"
#include "core/params.h"

namespace wlsync::analysis {

double skew_at(const sim::Simulator& sim, const std::vector<std::int32_t>& ids,
               double t) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::int32_t id : ids) {
    const double local = sim.local_time(id, t);
    lo = std::min(lo, local);
    hi = std::max(hi, local);
  }
  return hi - lo;
}

SkewSeries skew_series(const sim::Simulator& sim,
                       const std::vector<std::int32_t>& ids, double t0,
                       double t1, double dt) {
  // Batched pipeline: one pass over every clock for the whole window, then
  // a column-wise spread — same instants and identical doubles as the
  // historical per-sample skew_at scan (pinned by tests/topology_test.cpp).
  const LocalTimeGrid grid = sample_local_times(
      sim, ids, sample_times_with_endpoint(t0, t1, dt));
  SkewSeries series;
  series.times = grid.times;
  series.skews.reserve(grid.cols);
  for (std::size_t k = 0; k < grid.cols; ++k) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < grid.rows; ++r) {
      const double local = grid.at(r, k);
      lo = std::min(lo, local);
      hi = std::max(hi, local);
    }
    const double skew = hi - lo;
    series.skews.push_back(skew);
    series.max_skew = std::max(series.max_skew, skew);
  }
  return series;
}

double crossing_time(const sim::Simulator& sim, std::int32_t id, double label,
                     double t_lo, double t_hi) {
  // Coarse forward scan for the first bracket, then bisection.  Local time
  // is piecewise monotone with bounded negative steps, so the first
  // crossing is bracketed by the first coarse sample at or above the label.
  const double step = std::max((t_hi - t_lo) / 4096.0, 1e-9);
  double prev = t_lo;
  if (sim.local_time(id, t_lo) >= label) return t_lo;
  for (double t = t_lo + step; t <= t_hi + step; t += step) {
    const double clamped = std::min(t, t_hi);
    if (sim.local_time(id, clamped) >= label) {
      double lo = prev;
      double hi = clamped;
      for (int iter = 0; iter < 64; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (sim.local_time(id, mid) >= label) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      return hi;
    }
    if (clamped >= t_hi) break;
    prev = clamped;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double label_spread(const sim::Simulator& sim,
                    const std::vector<std::int32_t>& ids, double label,
                    double t_lo, double t_hi) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::int32_t id : ids) {
    const double cross = crossing_time(sim, id, label, t_lo, t_hi);
    if (std::isnan(cross)) return std::numeric_limits<double>::quiet_NaN();
    lo = std::min(lo, cross);
    hi = std::max(hi, cross);
  }
  return hi - lo;
}

ValidityReport check_validity(const sim::Simulator& sim,
                              const std::vector<std::int32_t>& ids,
                              const core::Params& params, double tmin0,
                              double tmax0, double t_start, double t_end,
                              double dt) {
  const core::Derived derived = core::derive(params);
  ValidityReport report;
  report.max_upper_violation = -std::numeric_limits<double>::infinity();
  report.max_lower_violation = -std::numeric_limits<double>::infinity();
  double hi_slope = -std::numeric_limits<double>::infinity();
  double lo_slope = std::numeric_limits<double>::infinity();
  // Same single-pass pipeline as skew_series; the envelope folds are
  // order-insensitive (max/min), evaluated in the historical t-outer,
  // id-inner order regardless.
  const LocalTimeGrid grid =
      sample_local_times(sim, ids, sample_times_closed(t_start, t_end, dt));
  for (std::size_t k = 0; k < grid.cols; ++k) {
    const double t = grid.times[k];
    const double upper = derived.alpha2 * (t - tmin0) + derived.alpha3;
    const double lower = derived.alpha1 * (t - tmax0) - derived.alpha3;
    for (std::size_t r = 0; r < grid.rows; ++r) {
      const double elapsed = grid.at(r, k) - params.T0;
      report.max_upper_violation =
          std::max(report.max_upper_violation, elapsed - upper);
      report.max_lower_violation =
          std::max(report.max_lower_violation, lower - elapsed);
      if (t - tmin0 > 0.0) hi_slope = std::max(hi_slope, elapsed / (t - tmin0));
      if (t - tmax0 > 0.0) lo_slope = std::min(lo_slope, elapsed / (t - tmax0));
    }
  }
  report.holds =
      report.max_upper_violation <= 0.0 && report.max_lower_violation <= 0.0;
  report.measured_hi_slope = hi_slope;
  report.measured_lo_slope = lo_slope;
  return report;
}

}  // namespace wlsync::analysis
