#pragma once
// Index-based d-ary min-heap over pooled payloads, with cached keys.
//
// The heap array holds (key, handle) entries: the ordering key is extracted
// from the pooled payload once at push and cached next to the 4-byte
// handle.  Sifting therefore moves small contiguous entries and compares
// locally — no pointer chase into the pool per comparison, and no copying
// of full payloads per level, which is what makes push/pop cheaper than a
// std::priority_queue of whole event records.  Requires that the key fields
// of a payload never change while its handle is queued.
//
// A 4-ary layout trades slightly more comparisons per level for half the
// tree depth and a cache-friendlier sift-down than the classic binary heap.

#include <cstddef>
#include <type_traits>
#include <vector>

#include "engine/event_pool.h"

namespace wlsync::engine {

template <typename Pool, typename KeyOf, std::size_t Arity = 4>
class IndexedQueue {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  using Handle = typename Pool::Handle;
  using Key =
      std::invoke_result_t<KeyOf, const typename Pool::value_type&>;

  explicit IndexedQueue(const Pool& pool, KeyOf key_of = KeyOf{})
      : pool_(&pool), key_of_(key_of) {}

  void push(Handle handle) {
    heap_.push_back(Entry{key_of_((*pool_)[handle]), handle});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] Handle top() const noexcept { return heap_.front().handle; }

  Handle pop() {
    const Handle result = heap_.front().handle;
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return result;
  }

  /// Pops the minimum only if pred(top key) holds; kInvalidHandle otherwise.
  /// Lets callers gate on the cached key without touching the pool.
  template <typename Pred>
  Handle pop_if(Pred&& pred) {
    if (heap_.empty() || !pred(heap_.front().key)) {
      return Pool::kInvalidHandle;
    }
    return pop();
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  void reserve(std::size_t n) { heap_.reserve(n); }

 private:
  struct Entry {
    Key key;
    Handle handle;
  };

  void sift_up(std::size_t pos) {
    const Entry moving = heap_[pos];
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / Arity;
      if (!(moving.key < heap_[parent].key)) break;
      heap_[pos] = heap_[parent];
      pos = parent;
    }
    heap_[pos] = moving;
  }

  void sift_down(std::size_t pos) {
    // Floyd's bottom-up variant: descend along min-children to the bottom
    // without comparing against `moving`, then bubble `moving` back up.
    // Event queues overwhelmingly sift a just-popped *leaf* (a late event),
    // which belongs near the bottom anyway — the descent's comparisons per
    // level drop from Arity to Arity - 1 and the bubble-up is ~O(1).
    const Entry moving = heap_[pos];
    const std::size_t top = pos;
    const std::size_t count = heap_.size();
    for (;;) {
      const std::size_t first_child = pos * Arity + 1;
      if (first_child >= count) break;
      const std::size_t last_child =
          first_child + Arity <= count ? first_child + Arity : count;
      std::size_t best = first_child;
      for (std::size_t child = first_child + 1; child < last_child; ++child) {
        if (heap_[child].key < heap_[best].key) best = child;
      }
      heap_[pos] = heap_[best];
      pos = best;
    }
    while (pos > top) {
      const std::size_t parent = (pos - 1) / Arity;
      if (!(moving.key < heap_[parent].key)) break;
      heap_[pos] = heap_[parent];
      pos = parent;
    }
    heap_[pos] = moving;
  }

  const Pool* pool_;
  std::vector<Entry> heap_;
  KeyOf key_of_;
};

}  // namespace wlsync::engine
