#include "engine/pdes.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cmath>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "engine/scheduler.h"
#include "util/spsc_queue.h"

namespace wlsync::engine {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Auto-tune thresholds (choose_pdes_workers).
constexpr std::int32_t kMinLaneSize = 64;  ///< processes per shard floor
/// Max average cut degree (cut edges per node): beyond this, cross-channel
/// traffic dominates the lane work.  A full mesh blows through it at any
/// interesting n; constant-degree expanders never reach it.
constexpr double kMaxCutDegree = 64.0;
/// Stall-rate ceiling above which the tuner demotes a (n, k) pair — the
/// same ceiling bench_micro --smoke gates the canonical spec on.
constexpr double kStallDemotionCeiling = 0.25;
}  // namespace

// ---------------------------------------------------------------------------
// Stall telemetry registry

struct PdesTuner::Impl {
  std::mutex mutex;
  std::map<std::pair<std::int32_t, std::int32_t>, double> rates;

  static Impl& get() {
    static Impl impl;
    return impl;
  }
};

PdesTuner& PdesTuner::instance() {
  static PdesTuner tuner;
  return tuner;
}

void PdesTuner::record(std::int32_t n, std::int32_t shards, double stall_rate) {
  Impl& impl = Impl::get();
  const std::lock_guard<std::mutex> lock(impl.mutex);
  auto [it, fresh] = impl.rates.try_emplace({n, shards}, stall_rate);
  if (!fresh) it->second = 0.5 * it->second + 0.5 * stall_rate;
}

double PdesTuner::stall_rate(std::int32_t n, std::int32_t shards) const {
  Impl& impl = Impl::get();
  const std::lock_guard<std::mutex> lock(impl.mutex);
  const auto it = impl.rates.find({n, shards});
  return it == impl.rates.end() ? -1.0 : it->second;
}

void PdesTuner::reset() {
  Impl& impl = Impl::get();
  const std::lock_guard<std::mutex> lock(impl.mutex);
  impl.rates.clear();
}

// ---------------------------------------------------------------------------
// Worker auto-tuning

PdesAutoChoice choose_pdes_workers(const net::Topology& topo,
                                   std::uint64_t seed) {
  const std::int32_t n = topo.n();
  PdesAutoChoice choice;
  std::string reason = "no processes";
  for (const std::int32_t k : {16, 8, 4, 2}) {
    if (n < k * kMinLaneSize) {
      reason = "n=" + std::to_string(n) + " leaves lanes thinner than " +
               std::to_string(kMinLaneSize) + " processes at k=" +
               std::to_string(k);
      continue;
    }
    // Cheap density shortcut: a balanced k-partition of a graph with
    // average degree d has cut degree ~ d * (1 - 1/k) before refinement.
    // When even that optimistic estimate is an order of magnitude past the
    // ceiling (a full mesh at large n), skip the O(E) partition entirely.
    const double avg_degree =
        n > 0 ? static_cast<double>(topo.edge_count() - static_cast<std::size_t>(n)) /
                    static_cast<double>(n)
              : 0.0;
    if (avg_degree * (1.0 - 1.0 / static_cast<double>(k)) >
        16.0 * kMaxCutDegree) {
      reason = "graph too dense (avg degree " +
               std::to_string(static_cast<std::int64_t>(avg_degree)) +
               "): any k=" + std::to_string(k) + " cut would drown the lanes";
      continue;
    }
    const net::Partition part = net::partition_topology(topo, k, seed);
    if (part.k < k) {
      reason = "partition collapsed to " + std::to_string(part.k) +
               " shards at k=" + std::to_string(k);
      continue;
    }
    const double cut_degree =
        2.0 * static_cast<double>(part.cut_edges.size()) /
        static_cast<double>(n);
    if (cut_degree > kMaxCutDegree) {
      reason = "cut degree " +
               std::to_string(static_cast<std::int64_t>(cut_degree)) +
               " exceeds " +
               std::to_string(static_cast<std::int64_t>(kMaxCutDegree)) +
               " at k=" + std::to_string(k);
      continue;
    }
    const double rate = PdesTuner::instance().stall_rate(n, k);
    if (rate > kStallDemotionCeiling) {
      reason = "stall telemetry demoted k=" + std::to_string(k) +
               " (observed rate " + std::to_string(rate) + ")";
      continue;
    }
    choice.workers = k;
    return choice;
  }
  choice.workers = 1;
  choice.reason = std::move(reason);
  return choice;
}

// ---------------------------------------------------------------------------
// Epoch-loop shared state

/// Everything the worker threads share.  Synchronization discipline:
///   * local_next / boundary_next / lane_stalls / lane_cross / lane_inline —
///     one writer slot per worker; read cross-thread only inside the barrier
///     completion (which the barrier orders after every writer's arrive).
///   * channels[dest][src] — an SPSC queue: worker `src` is the only
///     producer (pushes the moment a cross send is drawn, mid-window),
///     worker `dest` the only consumer (pre-window drain + mid-window
///     polls).  The completion additionally scan_pending()s and recycle()s
///     every queue, which is safe because all workers are blocked at the
///     barrier while it runs.
///   * window / done / epochs — written only by the completion callback and
///     read after the barrier releases.
///   * failed / error — workers set them from catch blocks before arriving;
///     the completion reads them after all arrivals.
struct PdesEngine::Shared {
  PdesEngine& engine;
  std::int32_t k;
  bool adaptive;
  double horizon = 0.0;
  double static_lookahead = kInf;  ///< min_j lane_floor[j]
  /// L_j: min delay floor over shard j's OUTGOING cut directions, min'd
  /// with the global floor when the lane hosts a faulty process (Byzantine
  /// sends are not topology-restricted).  +inf for a lane that cannot send
  /// cross at all.
  std::vector<double> lane_floor;
  /// F_j: min in-lane delay floor out of an INTERIOR node of shard j — the
  /// one in-lane hop an interior event must make before any cut edge is
  /// reachable.  +inf when the shard has no interior nodes (then every
  /// lane-j event is a boundary event and A_j covers it).
  std::vector<double> intra_floor;
  /// Engine boundary = partition cut endpoints OR faulty (size n).  Lanes
  /// point at this vector; feed per-event boundary-heap pushes.
  std::vector<char> boundary;
  /// Whether lane j maintains a boundary heap at all.  Tracking costs a
  /// push_heap per boundary-targeted event, which only pays off when the
  /// lane has a real interior (A_j then races ahead of I_j across quiet
  /// stretches).  A lane that is mostly boundary — every lane of a
  /// partitioned expander or mesh — skips the heap and reports A_j = I_j,
  /// which degrades its window term to the per-lane static bound
  /// I_j + L_j, still sound and never worse than the global static fold.
  std::vector<char> track_boundary;
  std::vector<double> local_next;     ///< I_j: scheduler head time
  std::vector<double> boundary_next;  ///< A_j: pruned boundary-heap top
  std::vector<std::int64_t> lane_stalls;
  std::vector<std::int64_t> lane_cross;
  std::vector<std::int64_t> lane_inline;
  /// channels[dest][src]: RemoteEvents from shard src to shard dest
  /// (diagonal null).
  std::vector<std::vector<std::unique_ptr<util::SpscQueue<sim::RemoteEvent>>>>
      channels;

  /// The mid-window drain hook run_lane fires every 64 dispatches.
  struct Poller final : sim::LanePoller {
    Shared* shared = nullptr;
    std::int32_t wi = 0;
    void poll() override {
      shared->lane_inline[static_cast<std::size_t>(wi)] +=
          static_cast<std::int64_t>(shared->drain_lane(wi));
    }
  };
  std::vector<Poller> pollers;

  double window = 0.0;  ///< inclusive run_lane limit for the current epoch
  bool done = false;
  std::int64_t epochs = 0;
  double window_sum = 0.0;
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  /// The barrier completion: fold per-lane reports + pending channel items
  /// into the epoch window.  Runs on one thread while all workers block, so
  /// it may touch everything without locks.
  struct Fold {
    Shared* s;
    void operator()() noexcept { s->fold(); }
  };
  std::barrier<Fold> gate;

  Shared(PdesEngine& eng, std::int32_t shards, bool adapt)
      : engine(eng),
        k(shards),
        adaptive(adapt),
        lane_floor(static_cast<std::size_t>(shards), kInf),
        intra_floor(static_cast<std::size_t>(shards), kInf),
        local_next(static_cast<std::size_t>(shards), kInf),
        boundary_next(static_cast<std::size_t>(shards), kInf),
        lane_stalls(static_cast<std::size_t>(shards), 0),
        lane_cross(static_cast<std::size_t>(shards), 0),
        lane_inline(static_cast<std::size_t>(shards), 0),
        channels(static_cast<std::size_t>(shards)),
        pollers(static_cast<std::size_t>(shards)),
        gate(shards, Fold{this}) {
    for (std::size_t dest = 0; dest < static_cast<std::size_t>(shards);
         ++dest) {
      channels[dest].resize(static_cast<std::size_t>(shards));
      for (std::size_t src = 0; src < static_cast<std::size_t>(shards);
           ++src) {
        if (src == dest) continue;
        channels[dest][src] =
            std::make_unique<util::SpscQueue<sim::RemoteEvent>>();
      }
    }
    for (std::size_t wi = 0; wi < static_cast<std::size_t>(shards); ++wi) {
      pollers[wi].shared = this;
      pollers[wi].wi = static_cast<std::int32_t>(wi);
    }
  }

  /// Derives the per-lane floors and the engine boundary set from the
  /// partition + delay model + fault registrations.  Must run before setup
  /// migrates events (the boundary vector feeds the lanes' heaps).
  void init_floors(const net::Partition& part) {
    sim::Simulator& sim = engine.sim_;
    const std::int32_t n = sim.process_count();
    const sim::DelayModel& model = *sim.delay_;

    // Engine boundary: cut endpoints plus every faulty process.  A
    // partition without boundary data (hand-built) degrades to all-boundary,
    // which is safe — it only disables the interior-hop widening.
    boundary.assign(static_cast<std::size_t>(n), 1);
    if (part.boundary.size() == static_cast<std::size_t>(n)) {
      std::copy(part.boundary.begin(), part.boundary.end(), boundary.begin());
    }
    std::vector<char> lane_faulty(static_cast<std::size_t>(k), 0);
    for (std::int32_t id = 0; id < n; ++id) {
      if (sim.is_faulty(id)) {
        boundary[static_cast<std::size_t>(id)] = 1;
        lane_faulty[static_cast<std::size_t>(part.shard_of[static_cast<std::size_t>(id)])] = 1;
      }
    }

    // L_j from the precomputed per-shard cut lists (direction matters:
    // shard j's floor is over edges leaving j); fall back to a full
    // cut-edge scan for partitions predating shard_cuts.
    if (part.shard_cuts.size() == static_cast<std::size_t>(k)) {
      for (std::int32_t s = 0; s < k; ++s) {
        for (const std::int32_t e : part.shard_cuts[static_cast<std::size_t>(s)]) {
          const auto [u, v] = part.cut_edges[static_cast<std::size_t>(e)];
          const bool u_here = part.shard_of[static_cast<std::size_t>(u)] == s;
          lane_floor[static_cast<std::size_t>(s)] =
              std::min(lane_floor[static_cast<std::size_t>(s)],
                       u_here ? model.lower_bound(u, v) : model.lower_bound(v, u));
        }
      }
    } else {
      for (const auto& [u, v] : part.cut_edges) {
        const auto su = static_cast<std::size_t>(part.shard_of[static_cast<std::size_t>(u)]);
        const auto sv = static_cast<std::size_t>(part.shard_of[static_cast<std::size_t>(v)]);
        lane_floor[su] = std::min(lane_floor[su], model.lower_bound(u, v));
        lane_floor[sv] = std::min(lane_floor[sv], model.lower_bound(v, u));
      }
    }
    for (std::int32_t s = 0; s < k; ++s) {
      if (lane_faulty[static_cast<std::size_t>(s)] != 0) {
        lane_floor[static_cast<std::size_t>(s)] = std::min(
            lane_floor[static_cast<std::size_t>(s)], model.global_lower_bound());
      }
      static_lookahead =
          std::min(static_lookahead, lane_floor[static_cast<std::size_t>(s)]);
    }

    // Track the boundary heap only where the lane is majority-interior:
    // that is where A_j outruns I_j.  (adaptive == false skips the heaps
    // everywhere — the fold ignores them.)
    track_boundary.assign(static_cast<std::size_t>(k), 0);
    bool any_interior = false;
    if (adaptive) {
      std::vector<std::int32_t> lane_sizes(static_cast<std::size_t>(k), 0);
      std::vector<std::int32_t> lane_boundary(static_cast<std::size_t>(k), 0);
      for (std::int32_t id = 0; id < n; ++id) {
        const auto s = static_cast<std::size_t>(
            part.shard_of[static_cast<std::size_t>(id)]);
        ++lane_sizes[s];
        lane_boundary[s] +=
            boundary[static_cast<std::size_t>(id)] != 0 ? 1 : 0;
      }
      for (std::int32_t s = 0; s < k; ++s) {
        track_boundary[static_cast<std::size_t>(s)] =
            2 * lane_boundary[static_cast<std::size_t>(s)] <
                    lane_sizes[static_cast<std::size_t>(s)]
                ? 1
                : 0;
      }
      for (std::int32_t id = 0; id < n && !any_interior; ++id) {
        any_interior = boundary[static_cast<std::size_t>(id)] == 0;
      }
    }

    // F_j over interior sources only.  A full mesh has no interior nodes at
    // k >= 2, so this never walks the O(n^2) mesh adjacency.
    if (any_interior) {
      for (std::int32_t u = 0; u < n; ++u) {
        if (boundary[static_cast<std::size_t>(u)] != 0) continue;
        const auto s = static_cast<std::size_t>(part.shard_of[static_cast<std::size_t>(u)]);
        for (const std::int32_t v : sim.neighbors_of(u)) {
          if (v == u) continue;
          intra_floor[s] = std::min(intra_floor[s], model.lower_bound(u, v));
        }
      }
    }
  }

  /// Moves every available inbound item into lane wi's scheduler.  Called
  /// by worker wi only (pre-window and from mid-window polls).  A remote
  /// event in this lane's past means the sender's window overlapped ours —
  /// the delay model broke its floor promise.  Fail loudly; never reorder.
  std::size_t drain_lane(std::int32_t wi) {
    sim::Simulator& sim = engine.sim_;
    sim::Simulator::Lane& lane =
        *sim.shard_lanes_[static_cast<std::size_t>(wi)];
    std::size_t total = 0;
    for (std::size_t src = 0; src < static_cast<std::size_t>(k); ++src) {
      util::SpscQueue<sim::RemoteEvent>* queue =
          channels[static_cast<std::size_t>(wi)][src].get();
      if (queue == nullptr) continue;
      total += queue->drain([&](const sim::RemoteEvent& ev) {
        if (ev.time < lane.current_time) {
          throw std::logic_error(
              "PdesEngine: causality violation — remote event at t=" +
              std::to_string(ev.time) + " behind lane time " +
              std::to_string(lane.current_time) +
              " (delay model under-promised its lookahead floor?)");
        }
        sim.schedule_raw(lane, ev.time, /*tier=*/0, ev.seq, ev.to,
                         ev.engine_kind, ev.msg);
      });
    }
    lane_cross[static_cast<std::size_t>(wi)] +=
        static_cast<std::int64_t>(total);
    return total;
  }

  void fold() noexcept {
    // The lane-local max_events slices already tripped individually; the
    // cross-lane SUM is the contract the serial engine enforces, so check
    // it here where all counters are quiescent.
    std::uint64_t total = engine.sim_.main_.events_processed;
    for (const auto& lane : engine.sim_.shard_lanes_) {
      total += lane->events_processed;
    }
    if (total > engine.sim_.config_.max_events && error == nullptr) {
      error = std::make_exception_ptr(std::runtime_error(
          "Simulator: max_events exceeded (runaway execution?)"));
      failed.store(true, std::memory_order_relaxed);
    }
    // T = earliest pending event anywhere: scheduler heads plus items still
    // sitting in channels (drains are opportunistic, so the fold must count
    // them).  The same scan folds each pending item's SEND horizon into the
    // adaptive bound: an item for a boundary process can cross again one
    // hop after it executes, an interior one needs an in-lane hop first.
    double t = kInf;
    double bound = kInf;
    for (std::size_t j = 0; j < static_cast<std::size_t>(k); ++j) {
      double tj = local_next[j];
      const double lj = lane_floor[j];
      const double fj = intra_floor[j];
      for (std::size_t src = 0; src < static_cast<std::size_t>(k); ++src) {
        util::SpscQueue<sim::RemoteEvent>* queue = channels[j][src].get();
        if (queue == nullptr) continue;
        queue->recycle();  // quiescent: zero-alloc steady state
        queue->scan_pending([&](const sim::RemoteEvent& ev) {
          tj = std::min(tj, ev.time);
          bound = std::min(
              bound, boundary[static_cast<std::size_t>(ev.to)] != 0
                         ? ev.time + lj
                         : ev.time + fj + lj);
        });
      }
      t = std::min(t, tj);
      // Boundary events can cross one hop after they execute; interior
      // events need an in-lane hop before any cut edge is reachable.
      bound = std::min(bound, boundary_next[j] + lj);
      bound = std::min(bound, local_next[j] + fj + lj);
    }
    if (failed.load(std::memory_order_relaxed) || t > horizon) {
      done = true;
      return;
    }
    ++epochs;
    if (!adaptive) bound = t + static_lookahead;
    // Safe window: events strictly below the bound cannot be affected by
    // any cross-cut message still to be sent.  run_lane's limit is
    // inclusive, so step one ulp below; every adaptive term exceeds t by at
    // least the (positive) cut floor, so the ulp step never lands below t —
    // the clamp is belt-and-braces, and the event at t itself is always
    // safe, which also guarantees epoch progress.
    double limit = std::nextafter(bound, -kInf);
    if (limit < t) limit = t;
    window = std::min(limit, horizon);
    window_sum += window - t;
  }

  void record(std::exception_ptr err) {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (error == nullptr) error = std::move(err);
    failed.store(true, std::memory_order_relaxed);
  }
};

// ---------------------------------------------------------------------------
// Engine lifecycle

PdesEngine::PdesEngine(sim::Simulator& sim, const net::Partition& partition,
                       std::vector<sim::TraceSink*> lane_sinks,
                       PdesOptions options)
    : sim_(sim) {
  const char* reason = ineligible_reason(sim_, partition);
  if (reason != nullptr) {
    throw std::invalid_argument(std::string("PdesEngine: ") + reason);
  }
  shared_ = std::make_unique<Shared>(*this, partition.k, options.adaptive);
  shared_->init_floors(partition);
  setup(partition, lane_sinks);
  stats_.lookahead = shared_->static_lookahead;
  stats_.shards = partition.k;
  live_ = true;
}

PdesEngine::~PdesEngine() {
  if (live_) dissolve();
}

double PdesEngine::lookahead_for(const sim::Simulator& sim,
                                 const net::Partition& partition) {
  if (partition.k <= 1 || partition.cut_edges.empty()) return kInf;
  bool any_faulty = false;
  for (std::int32_t id = 0; id < sim.process_count(); ++id) {
    any_faulty = any_faulty || sim.is_faulty(id);
  }
  const sim::DelayModel& model = *sim.delay_;
  if (any_faulty) {
    // Byzantine point-to-point sends are not topology-restricted: any
    // ordered pair can cross the cut, so only the global floor holds.
    return model.global_lower_bound();
  }
  double floor = kInf;
  for (const auto& [u, v] : partition.cut_edges) {
    floor = std::min({floor, model.lower_bound(u, v), model.lower_bound(v, u)});
  }
  return floor;
}

const char* PdesEngine::ineligible_reason(const sim::Simulator& sim,
                                          const net::Partition& partition) {
  if (sim.process_count() == 0) return "no processes registered";
  if (sim.has_dynamics()) return "dynamic-topology schedule installed";
  if (partition.n() != sim.process_count()) {
    return "partition node count does not match process count";
  }
  if (!sim.shard_lanes_.empty()) return "shard lanes already live";
  if (sim.observer_ != nullptr) {
    return "a streaming observer is attached (single-threaded API)";
  }
  if (!(lookahead_for(sim, partition) > 0.0)) {
    return "delay model promises no positive lookahead floor on the cut";
  }
  return nullptr;
}

void PdesEngine::setup(const net::Partition& partition,
                       const std::vector<sim::TraceSink*>& lane_sinks) {
  using Lane = sim::Simulator::Lane;
  const auto k = static_cast<std::size_t>(partition.k);

  // Warm every lazily-built structure a worker would otherwise race to
  // materialize: the implicit-mesh identity list and (when a topology is
  // configured) its BFS distance cache.
  (void)sim_.neighbors_of(0);

  sim_.shard_lanes_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    auto lane = std::make_unique<Lane>();
    // Lane pending sets are ~1/k of the serial queue, squarely in the
    // indexed d-ary heap's regime; under kAuto, picking it outright skips
    // the depth-adaptive wrapper's per-op indirection and its
    // heap<->calendar migration churn at lane scale.  Sound because every
    // policy pops the identical (time, tier, seq) order (engine/scheduler.h)
    // — an explicitly pinned kind is still honored.
    lane->scheduler = make_scheduler(
        sim_.config_.scheduler == SchedulerKind::kAuto ? SchedulerKind::kDaryHeap
                                                       : sim_.config_.scheduler,
        lane->pool);
    lane->shard = static_cast<std::int32_t>(i);
    lane->current_time = sim_.main_.current_time;
    // Direct SPSC channels to every other lane, the engine boundary set
    // (installed BEFORE event migration so migrating boundary events seed
    // the heap) and the mid-window drain hook.
    lane->channels_out.assign(k, nullptr);
    for (std::size_t dest = 0; dest < k; ++dest) {
      if (dest == i) continue;
      lane->channels_out[dest] = shared_->channels[dest][i].get();
    }
    lane->boundary =
        shared_->track_boundary[i] != 0 ? &shared_->boundary : nullptr;
    lane->poller = &shared_->pollers[i];
    if (i < lane_sinks.size() && lane_sinks[i] != nullptr) {
      lane->sinks.push_back(lane_sinks[i]);
    }
    sim_.shard_lanes_.push_back(std::move(lane));
  }
  sim_.lane_of_ = partition.shard_of;

  // Migrate main_'s pending events to their owner lanes, seqs intact.  An
  // in-flight batched fan-out may span shards: split it back into
  // per-recipient events (batching is observable-identical to per-recipient
  // scheduling, so the split cannot change the execution).
  const sim::EngineKind arrive_kind = sim_.config_.nic.has_value()
                                          ? sim::EngineKind::kNicArrive
                                          : sim::EngineKind::kDeliver;
  while (!sim_.main_.scheduler->empty()) {
    const sim::EventHandle handle = sim_.main_.scheduler->pop();
    ++sim_.main_.queue_pops;
    const sim::Event& event = sim_.main_.pool[handle];
    if (event.engine_kind == sim::EngineKind::kFanout) {
      const net::FanoutRecord& record = sim_.main_.fanouts[event.link];
      for (std::uint32_t d = record.cursor; d < record.deliveries.size(); ++d) {
        const net::FanoutDelivery& del = record.deliveries[d];
        sim_.schedule_raw(sim_.owner_lane(del.to), del.time, /*tier=*/0,
                          del.seq, del.to, arrive_kind, record.msg);
      }
      sim_.main_.fanouts.release(event.link);
    } else {
      sim_.schedule_raw(sim_.owner_lane(event.to), event.time, event.tier,
                        event.seq, event.to, event.engine_kind, event.msg);
    }
    sim_.main_.pool.release(handle);
  }
}

void PdesEngine::worker(std::int32_t wi, double horizon) {
  (void)horizon;  // folded into Shared by run_until
  Shared& sh = *shared_;
  sim::Simulator::Lane& lane =
      *sim_.shard_lanes_[static_cast<std::size_t>(wi)];
  const auto w = static_cast<std::size_t>(wi);
  for (;;) {
    try {
      // Report phase: scheduler head I_j and boundary-heap top A_j.  Heap
      // entries below the scheduler head belong to events that already
      // executed (the head is a lower bound on everything still pending,
      // including the remaining deliveries of a batched fan-out, whose
      // queue entry is keyed by its FIRST remaining delivery) — prune them
      // lazily here.
      const double peek = lane.scheduler->empty()
                              ? kInf
                              : lane.pool[lane.scheduler->peek()].time;
      auto& bh = lane.boundary_heap;
      while (!bh.empty() && bh.front() < peek) {
        std::pop_heap(bh.begin(), bh.end(), std::greater<>{});
        bh.pop_back();
      }
      sh.local_next[w] = peek;
      // Untracked lane: every pending event might be a boundary event, so
      // A_j degrades to the scheduler head (the per-lane static bound).
      sh.boundary_next[w] = lane.boundary == nullptr
                                ? peek
                                : (bh.empty() ? kInf : bh.front());
    } catch (...) {
      sh.record(std::current_exception());
      sh.local_next[w] = kInf;
      sh.boundary_next[w] = kInf;
    }
    sh.gate.arrive_and_wait();  // completion folds the window / termination
    if (sh.done) break;
    try {
      // Run phase.  First drain everything already in the channels: the
      // fold bounded those items' SEND horizons, not their own times, so
      // they may lie inside the fresh window and must be in the scheduler
      // before it executes.  (Everything pushed before the producers
      // arrived at the gate is visible here.)  Mid-window arrivals land
      // strictly beyond the window and are ingested by the dispatch-loop
      // polls; the trailing drain just shrinks the next fold's scan.
      sh.drain_lane(wi);
      const std::uint64_t before = lane.events_processed;
      sim_.run_lane(lane, sh.window);
      if (lane.events_processed == before) ++sh.lane_stalls[w];
      sh.drain_lane(wi);
    } catch (...) {
      sh.record(std::current_exception());
    }
  }
}

void PdesEngine::run_until(double horizon) {
  if (!live_) {
    throw std::logic_error("PdesEngine: run_until after lanes dissolved");
  }
  Shared& sh = *shared_;
  sh.horizon = horizon;

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(sh.k));
  for (std::int32_t wi = 0; wi < sh.k; ++wi) {
    workers.emplace_back([this, wi, horizon] { worker(wi, horizon); });
  }
  for (std::thread& t : workers) t.join();

  stats_.epochs += sh.epochs;
  stats_.window_sum += sh.window_sum;
  std::int64_t stalls = 0;
  for (std::int32_t wi = 0; wi < sh.k; ++wi) {
    stalls += sh.lane_stalls[static_cast<std::size_t>(wi)];
    stats_.cross_messages += sh.lane_cross[static_cast<std::size_t>(wi)];
    stats_.inline_drained += sh.lane_inline[static_cast<std::size_t>(wi)];
  }
  stats_.stalls += stalls;

  // Feed the auto-tuner: stall rate over lane-epochs, from runs long enough
  // to mean something.
  if (sh.error == nullptr && sh.epochs >= 4) {
    PdesTuner::instance().record(
        sim_.process_count(), sh.k,
        static_cast<double>(stalls) /
            static_cast<double>(sh.epochs * sh.k));
  }

  std::exception_ptr err = sh.error;
  dissolve();
  live_ = false;
  if (err != nullptr) std::rethrow_exception(err);
}

void PdesEngine::dissolve() {
  // Leftover channel traffic exists on failure paths and past-horizon
  // epochs; dissolve must always leave a runnable serial simulator, so
  // drain every queue into main_ (quiescent: all workers joined).
  if (shared_ != nullptr) {
    for (auto& row : shared_->channels) {
      for (auto& cell : row) {
        if (cell == nullptr) continue;
        cell->drain([&](const sim::RemoteEvent& ev) {
          sim_.schedule_raw(sim_.main_, ev.time, /*tier=*/0, ev.seq, ev.to,
                            ev.engine_kind, ev.msg);
        });
      }
    }
  }
  const sim::EngineKind arrive_kind = sim_.config_.nic.has_value()
                                          ? sim::EngineKind::kNicArrive
                                          : sim::EngineKind::kDeliver;
  for (auto& lane_ptr : sim_.shard_lanes_) {
    sim::Simulator::Lane& lane = *lane_ptr;
    while (!lane.scheduler->empty()) {
      const sim::EventHandle handle = lane.scheduler->pop();
      const sim::Event& event = lane.pool[handle];
      if (event.engine_kind == sim::EngineKind::kFanout) {
        // Un-batch the remaining deliveries; the recorded seqs/times make
        // the expansion indistinguishable from per-recipient scheduling.
        const net::FanoutRecord& record = lane.fanouts[event.link];
        for (std::uint32_t d = record.cursor; d < record.deliveries.size();
             ++d) {
          const net::FanoutDelivery& del = record.deliveries[d];
          sim_.schedule_raw(sim_.main_, del.time, /*tier=*/0, del.seq, del.to,
                            arrive_kind, record.msg);
        }
        lane.fanouts.release(event.link);
      } else {
        sim_.schedule_raw(sim_.main_, event.time, event.tier, event.seq,
                          event.to, event.engine_kind, event.msg);
      }
      lane.pool.release(handle);
    }
    sim_.main_.messages_sent += lane.messages_sent;
    sim_.main_.events_processed += lane.events_processed;
    sim_.main_.nic_dropped += lane.nic_dropped;
    sim_.main_.queue_pushes += lane.queue_pushes;
    sim_.main_.queue_pops += lane.queue_pops;
    sim_.main_.fanout_direct += lane.fanout_direct;
    sim_.main_.peak_pending = std::max(sim_.main_.peak_pending, lane.peak_pending);
    sim_.main_.current_time = std::max(sim_.main_.current_time, lane.current_time);
  }
  sim_.shard_lanes_.clear();
  sim_.lane_of_.clear();
}

}  // namespace wlsync::engine
