#include "engine/pdes.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cmath>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace wlsync::engine {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

/// Everything the worker threads share.  Synchronization discipline:
///   * local_next / lane_stalls / lane_cross — one writer slot per worker;
///     read cross-thread only inside the barrier completion (which the
///     barrier orders after every writer's arrive).
///   * channels[dest][src] — written by worker `src` in the publish phase
///     of epoch e, read by worker `dest` in the drain phase of epoch e+1;
///     the two phases are separated by the publish barrier, so every cell
///     has exactly one live accessor at any moment.
///   * window / done / epochs — written only by the completion callback
///     (which runs on exactly one thread while everyone else blocks) and
///     read after the barrier releases.
///   * failed / error — workers set them from catch blocks before arriving;
///     the completion reads them after all arrivals.
struct PdesEngine::Shared {
  PdesEngine& engine;
  std::int32_t k;
  double horizon = 0.0;
  double lookahead = 0.0;
  std::vector<double> local_next;
  std::vector<std::int64_t> lane_stalls;
  std::vector<std::int64_t> lane_cross;
  /// channels[dest][src]: RemoteEvents from shard src to shard dest.
  std::vector<std::vector<std::vector<sim::RemoteEvent>>> channels;
  double window = 0.0;  ///< inclusive run_lane limit for the current epoch
  bool done = false;
  std::int64_t epochs = 0;
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  /// The barrier-1 completion: fold per-lane reports into the epoch window.
  /// Runs on one thread while all workers block, so it may touch everything
  /// without locks.
  struct Fold {
    Shared* s;
    void operator()() noexcept { s->fold(); }
  };
  std::barrier<Fold> gate;
  std::barrier<> publish_gate;

  Shared(PdesEngine& eng, std::int32_t shards)
      : engine(eng),
        k(shards),
        local_next(static_cast<std::size_t>(shards), kInf),
        lane_stalls(static_cast<std::size_t>(shards), 0),
        lane_cross(static_cast<std::size_t>(shards), 0),
        channels(static_cast<std::size_t>(shards),
                 std::vector<std::vector<sim::RemoteEvent>>(
                     static_cast<std::size_t>(shards))),
        gate(shards, Fold{this}),
        publish_gate(shards) {}

  void fold() noexcept {
    // The lane-local max_events slices already tripped individually; the
    // cross-lane SUM is the contract the serial engine enforces, so check
    // it here where all counters are quiescent.
    std::uint64_t total = 0;
    for (const auto& lane : engine.sim_.shard_lanes_) {
      total += lane->events_processed;
    }
    total += engine.sim_.main_.events_processed;
    if (total > engine.sim_.config_.max_events && error == nullptr) {
      error = std::make_exception_ptr(std::runtime_error(
          "Simulator: max_events exceeded (runaway execution?)"));
      failed.store(true, std::memory_order_relaxed);
    }
    double t = kInf;
    for (const double v : local_next) t = std::min(t, v);
    if (failed.load(std::memory_order_relaxed) || t > horizon) {
      done = true;
      return;
    }
    ++epochs;
    // Safe window: events strictly below t + L cannot be affected by any
    // cross-cut message sent at >= t.  run_lane's limit is inclusive, so
    // step one ulp below the bound; if lookahead is smaller than one ulp of
    // t (no physical config gets near this) fall back to t itself — the
    // event at t is always safe, which also guarantees epoch progress.
    double limit = std::nextafter(t + lookahead, -kInf);
    if (limit < t) limit = t;
    window = std::min(limit, horizon);
  }

  void record(std::exception_ptr err) {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (error == nullptr) error = std::move(err);
    failed.store(true, std::memory_order_relaxed);
  }
};

PdesEngine::PdesEngine(sim::Simulator& sim, const net::Partition& partition,
                       std::vector<sim::TraceSink*> lane_sinks)
    : sim_(sim) {
  const char* reason = ineligible_reason(sim_, partition);
  if (reason != nullptr) {
    throw std::invalid_argument(std::string("PdesEngine: ") + reason);
  }
  setup(partition, lane_sinks);
  shared_ = std::make_unique<Shared>(*this, partition.k);
  shared_->lookahead = lookahead_for(sim_, partition);
  stats_.lookahead = shared_->lookahead;
  stats_.shards = partition.k;
  live_ = true;
}

PdesEngine::~PdesEngine() {
  if (live_) dissolve();
}

double PdesEngine::lookahead_for(const sim::Simulator& sim,
                                 const net::Partition& partition) {
  if (partition.k <= 1 || partition.cut_edges.empty()) return kInf;
  bool any_faulty = false;
  for (std::int32_t id = 0; id < sim.process_count(); ++id) {
    any_faulty = any_faulty || sim.is_faulty(id);
  }
  const sim::DelayModel& model = *sim.delay_;
  if (any_faulty) {
    // Byzantine point-to-point sends are not topology-restricted: any
    // ordered pair can cross the cut, so only the global floor holds.
    return model.global_lower_bound();
  }
  double floor = kInf;
  for (const auto& [u, v] : partition.cut_edges) {
    floor = std::min({floor, model.lower_bound(u, v), model.lower_bound(v, u)});
  }
  return floor;
}

const char* PdesEngine::ineligible_reason(const sim::Simulator& sim,
                                          const net::Partition& partition) {
  if (sim.process_count() == 0) return "no processes registered";
  if (sim.has_dynamics()) return "dynamic-topology schedule installed";
  if (partition.n() != sim.process_count()) {
    return "partition node count does not match process count";
  }
  if (!sim.shard_lanes_.empty()) return "shard lanes already live";
  if (sim.observer_ != nullptr) {
    return "a streaming observer is attached (single-threaded API)";
  }
  if (!(lookahead_for(sim, partition) > 0.0)) {
    return "delay model promises no positive lookahead floor on the cut";
  }
  return nullptr;
}

void PdesEngine::setup(const net::Partition& partition,
                       const std::vector<sim::TraceSink*>& lane_sinks) {
  using Lane = sim::Simulator::Lane;
  const auto k = static_cast<std::size_t>(partition.k);

  // Warm every lazily-built structure a worker would otherwise race to
  // materialize: the implicit-mesh identity list and (when a topology is
  // configured) its BFS distance cache.
  (void)sim_.neighbors_of(0);

  sim_.shard_lanes_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->scheduler = make_scheduler(sim_.config_.scheduler, lane->pool);
    lane->shard = static_cast<std::int32_t>(i);
    lane->current_time = sim_.main_.current_time;
    lane->outbox.resize(k);
    if (i < lane_sinks.size() && lane_sinks[i] != nullptr) {
      lane->sinks.push_back(lane_sinks[i]);
    }
    sim_.shard_lanes_.push_back(std::move(lane));
  }
  sim_.lane_of_ = partition.shard_of;

  // Migrate main_'s pending events to their owner lanes, seqs intact.  An
  // in-flight batched fan-out may span shards: split it back into
  // per-recipient events (batching is observable-identical to per-recipient
  // scheduling, so the split cannot change the execution).
  const sim::EngineKind arrive_kind = sim_.config_.nic.has_value()
                                          ? sim::EngineKind::kNicArrive
                                          : sim::EngineKind::kDeliver;
  while (!sim_.main_.scheduler->empty()) {
    const sim::EventHandle handle = sim_.main_.scheduler->pop();
    ++sim_.main_.queue_pops;
    const sim::Event& event = sim_.main_.pool[handle];
    if (event.engine_kind == sim::EngineKind::kFanout) {
      const net::FanoutRecord& record = sim_.main_.fanouts[event.link];
      for (std::uint32_t d = record.cursor; d < record.deliveries.size(); ++d) {
        const net::FanoutDelivery& del = record.deliveries[d];
        sim_.schedule_raw(sim_.owner_lane(del.to), del.time, /*tier=*/0,
                          del.seq, del.to, arrive_kind, record.msg);
      }
      sim_.main_.fanouts.release(event.link);
    } else {
      sim_.schedule_raw(sim_.owner_lane(event.to), event.time, event.tier,
                        event.seq, event.to, event.engine_kind, event.msg);
    }
    sim_.main_.pool.release(handle);
  }
}

void PdesEngine::worker(std::int32_t wi, double horizon) {
  (void)horizon;  // folded into Shared by run_until
  Shared& sh = *shared_;
  sim::Simulator::Lane& lane =
      *sim_.shard_lanes_[static_cast<std::size_t>(wi)];
  const auto w = static_cast<std::size_t>(wi);
  for (;;) {
    try {
      // Phase 1: drain inbound channels into the scheduler.  A remote event
      // in this lane's past means the sender's window overlapped ours — the
      // delay model broke its floor promise.  Fail loudly; never reorder.
      for (std::size_t src = 0; src < static_cast<std::size_t>(sh.k); ++src) {
        std::vector<sim::RemoteEvent>& in = sh.channels[w][src];
        for (const sim::RemoteEvent& ev : in) {
          if (ev.time < lane.current_time) {
            throw std::logic_error(
                "PdesEngine: causality violation — remote event at t=" +
                std::to_string(ev.time) + " behind lane time " +
                std::to_string(lane.current_time) +
                " (delay model under-promised its lookahead floor?)");
          }
          sim_.schedule_raw(lane, ev.time, /*tier=*/0, ev.seq, ev.to,
                            ev.engine_kind, ev.msg);
        }
        sh.lane_cross[w] += static_cast<std::int64_t>(in.size());
        in.clear();
      }
      sh.local_next[w] = lane.scheduler->empty()
                             ? kInf
                             : lane.pool[lane.scheduler->peek()].time;
    } catch (...) {
      sh.record(std::current_exception());
      sh.local_next[w] = kInf;
    }
    sh.gate.arrive_and_wait();  // completion folds the window / termination
    if (sh.done) break;
    try {
      // Phase 2: execute the safe window, then publish the outboxes.  The
      // channel cell (dest, wi) was drained and cleared by dest before the
      // gate, so the swap hands over this epoch's batch and takes back an
      // empty vector with recycled capacity.
      const std::uint64_t before = lane.events_processed;
      sim_.run_lane(lane, sh.window);
      if (lane.events_processed == before) ++sh.lane_stalls[w];
      for (std::size_t dest = 0; dest < static_cast<std::size_t>(sh.k);
           ++dest) {
        if (dest == w || lane.outbox[dest].empty()) continue;
        sh.channels[dest][w].swap(lane.outbox[dest]);
      }
    } catch (...) {
      sh.record(std::current_exception());
    }
    sh.publish_gate.arrive_and_wait();
  }
}

void PdesEngine::run_until(double horizon) {
  if (!live_) {
    throw std::logic_error("PdesEngine: run_until after lanes dissolved");
  }
  Shared& sh = *shared_;
  sh.horizon = horizon;

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(sh.k));
  for (std::int32_t wi = 0; wi < sh.k; ++wi) {
    workers.emplace_back([this, wi, horizon] { worker(wi, horizon); });
  }
  for (std::thread& t : workers) t.join();

  stats_.epochs += sh.epochs;
  for (std::int32_t wi = 0; wi < sh.k; ++wi) {
    stats_.stalls += sh.lane_stalls[static_cast<std::size_t>(wi)];
    stats_.cross_messages += sh.lane_cross[static_cast<std::size_t>(wi)];
  }

  std::exception_ptr err = sh.error;
  dissolve();
  live_ = false;
  if (err != nullptr) std::rethrow_exception(err);
}

void PdesEngine::dissolve() {
  // Leftover channel / outbox traffic exists only on failure paths (the
  // clean loop drains every publish before terminating), but dissolve must
  // always leave a runnable serial simulator.
  if (shared_ != nullptr) {
    for (auto& row : shared_->channels) {
      for (auto& cell : row) {
        for (const sim::RemoteEvent& ev : cell) {
          sim_.schedule_raw(sim_.main_, ev.time, /*tier=*/0, ev.seq, ev.to,
                            ev.engine_kind, ev.msg);
        }
        cell.clear();
      }
    }
  }
  const sim::EngineKind arrive_kind = sim_.config_.nic.has_value()
                                          ? sim::EngineKind::kNicArrive
                                          : sim::EngineKind::kDeliver;
  for (auto& lane_ptr : sim_.shard_lanes_) {
    sim::Simulator::Lane& lane = *lane_ptr;
    for (const auto& outbox : lane.outbox) {
      for (const sim::RemoteEvent& ev : outbox) {
        sim_.schedule_raw(sim_.main_, ev.time, /*tier=*/0, ev.seq, ev.to,
                          ev.engine_kind, ev.msg);
      }
    }
    while (!lane.scheduler->empty()) {
      const sim::EventHandle handle = lane.scheduler->pop();
      const sim::Event& event = lane.pool[handle];
      if (event.engine_kind == sim::EngineKind::kFanout) {
        // Un-batch the remaining deliveries; the recorded seqs/times make
        // the expansion indistinguishable from per-recipient scheduling.
        const net::FanoutRecord& record = lane.fanouts[event.link];
        for (std::uint32_t d = record.cursor; d < record.deliveries.size();
             ++d) {
          const net::FanoutDelivery& del = record.deliveries[d];
          sim_.schedule_raw(sim_.main_, del.time, /*tier=*/0, del.seq, del.to,
                            arrive_kind, record.msg);
        }
        lane.fanouts.release(event.link);
      } else {
        sim_.schedule_raw(sim_.main_, event.time, event.tier, event.seq,
                          event.to, event.engine_kind, event.msg);
      }
      lane.pool.release(handle);
    }
    sim_.main_.messages_sent += lane.messages_sent;
    sim_.main_.events_processed += lane.events_processed;
    sim_.main_.nic_dropped += lane.nic_dropped;
    sim_.main_.queue_pushes += lane.queue_pushes;
    sim_.main_.queue_pops += lane.queue_pops;
    sim_.main_.fanout_direct += lane.fanout_direct;
    sim_.main_.peak_pending = std::max(sim_.main_.peak_pending, lane.peak_pending);
    sim_.main_.current_time = std::max(sim_.main_.current_time, lane.current_time);
  }
  sim_.shard_lanes_.clear();
  sim_.lane_of_.clear();
}

}  // namespace wlsync::engine
