#pragma once
// Conservative parallel discrete-event engine (PDES) over topology shards.
//
// The serial engine dispatches one global (time, tier, seq) order.  This
// engine partitions the process set into K shards (net/partition.h), gives
// each shard a private Simulator::Lane — event pool, scheduler, fan-out
// pool, clock — and a worker thread, and advances all lanes concurrently
// under the classic conservative-synchronization guarantee: a message
// crossing the cut, sent at time >= T, arrives at >= T + L for the cut's
// delay floor L, so everything strictly below the folded bound is safe to
// execute without hearing from other lanes.
//
// The epoch protocol is ONE folding barrier per epoch, with the channel
// drain overlapped into lane execution:
//
//   report    each worker prunes its lane's boundary heap against the
//             scheduler head and reports (next event time I_j, next
//             boundary event time A_j);
//   barrier   the completion folds the epoch window (see below), scans the
//             SPSC channels' pending items into the termination time, and
//             recycles spent channel blocks (quiescent: every worker is
//             blocked, so steady-state epochs allocate nothing);
//   run       each worker first drains everything pending in its inbound
//             channels (those items may lie inside the fresh window), then
//             executes run_lane up to the window limit.  Cross-cut sends
//             are pushed DIRECTLY into the destination lane's SPSC channel
//             — the sending lane has already drawn the delay and allocated
//             the seq from the SENDER's private streams, so the values are
//             exactly the serial engine's — and the receiving lane polls
//             its channels every few dispatches (sim::LanePoller), so
//             arrival ingestion overlaps execution instead of serializing
//             behind a publish barrier.
//
// Window fold.  With per-lane outgoing cut floors L_j (min over shard j's
// incident cut edges, min'd with the global floor when the lane hosts a
// faulty process) and per-lane intra floors F_j (min in-lane edge floor
// from an interior node):
//
//   static    W = T + min_j L_j          (the PR 7 global-floor window)
//   adaptive  W = min_j min( A_j + L_j,            boundary events
//                            I_j + F_j + L_j,      interior events: one
//                                                  in-lane hop before any
//                                                  cut edge is reachable
//                            r + [L_j | F_j+L_j])  pending channel items r
//
// Every adaptive term dominates T + min_j L_j, so the adaptive window is
// never narrower than the static one and adaptive epoch counts are <= the
// static counts on every spec (tests/pdes_property_test.cpp pins this).
// Epochs widen to the next cross-cut *send horizon* instead of the next
// event anywhere: the inter-round gap, where no boundary process has
// anything pending, collapses into one epoch.
//
// Bit-identity (the whole point): per-origin seq allocation, per-sender
// delay streams and the store-and-forward NIC make the event order
// intrinsic to each process' execution rather than to a global insertion
// counter, so the sharded execution replays the serial one exactly —
// pinned by tests/pdes_test.cpp at results_identical strictness across
// topologies x delay models x fault mixes x worker counts, and by
// tests/pdes_property_test.cpp across randomized pins.
//
// The engine never deadlocks (the barrier is global and every epoch makes
// progress: the event at T itself is inside the window) and never violates
// causality — if a delay model ever under-promised its floor, the drain
// throws ("PDES causality violation") rather than reordering.

#include <cstdint>
#include <string>
#include <vector>

#include "net/partition.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace wlsync::engine {

struct PdesStats {
  std::int64_t epochs = 0;  ///< barrier windows executed
  /// Lane-epochs that dispatched zero events (idle lanes inside a window —
  /// the conservative overhead a tighter lookahead would reclaim).
  std::int64_t stalls = 0;
  std::int64_t cross_messages = 0;  ///< RemoteEvents carried over channels
  /// Of cross_messages, how many were ingested by mid-window polls
  /// (overlapped with execution) rather than the epoch-boundary drain.
  std::int64_t inline_drained = 0;
  /// The static window width min_j L_j (seconds); the adaptive window is
  /// never narrower.
  double lookahead = 0.0;
  /// Sum over epochs of (window limit - T): average adaptive widening is
  /// window_sum / epochs - lookahead.
  double window_sum = 0.0;
  std::int32_t shards = 0;
};

struct PdesOptions {
  /// Per-epoch adaptive lookahead (the default).  false = the static
  /// global-cut-floor window of PR 7, kept as the A/B reference for the
  /// epoch-monotonicity pin and the --pdes-adaptive bench axis.
  bool adaptive = true;
};

/// Deterministic auto-tune outcome for pdes_workers <= 0.
struct PdesAutoChoice {
  std::int32_t workers = 1;  ///< < 2 means "stay serial"
  std::string reason;        ///< why it declined (empty when workers >= 2)
};

/// Picks a shard/worker count for `topo` from partition cut statistics
/// (cut fraction, lane thickness) plus the live stall telemetry recorded
/// by completed PDES runs (PdesTuner).  Deterministic given the tuner
/// state; candidates descend {16, 8, 4, 2}.
[[nodiscard]] PdesAutoChoice choose_pdes_workers(const net::Topology& topo,
                                                 std::uint64_t seed);

/// Process-wide stall telemetry: every completed PDES run records its
/// stall rate keyed by (n, shards); choose_pdes_workers demotes candidates
/// whose observed EWMA rate exceeds the smoke-gate ceiling (0.25).  This
/// is what fixes nonmonotonic worker cells *live*: one stall-heavy run at
/// (n, 8) steers the next auto-tuned run at that size to 4.  Thread-safe
/// (ParallelRunner trials record concurrently).
class PdesTuner {
 public:
  static PdesTuner& instance();
  void record(std::int32_t n, std::int32_t shards, double stall_rate);
  /// EWMA stall rate for the key, or -1 when nothing was recorded.
  [[nodiscard]] double stall_rate(std::int32_t n, std::int32_t shards) const;
  void reset();  ///< tests only

 private:
  PdesTuner() = default;
  struct Impl;
};

/// One parallel run over an existing Simulator.  Construction shards the
/// simulator's pending events into per-shard lanes; run_until drives the
/// epoch loop with one worker thread per shard; destruction (or run_until
/// completing, whichever comes first) dissolves the lanes back into the
/// serial main lane, so the Simulator afterwards is indistinguishable from
/// one that ran serially — run_until can even continue past the parallel
/// horizon on the event engine.
class PdesEngine {
 public:
  /// `lane_sinks[i]` (optional, may be empty) is attached as shard i's
  /// trace sink; per-lane sinks see only their shard's events, in lane
  /// order, and the caller merges afterwards (RoundTrace::absorb).  The
  /// simulator's own main-lane sinks see nothing while the engine runs.
  PdesEngine(sim::Simulator& sim, const net::Partition& partition,
             std::vector<sim::TraceSink*> lane_sinks = {},
             PdesOptions options = {});
  ~PdesEngine();

  PdesEngine(const PdesEngine&) = delete;
  PdesEngine& operator=(const PdesEngine&) = delete;

  /// Why `sim` cannot run under this engine with `partition`, or nullptr if
  /// it can.  Mirrors RoundFastPath::ineligible_reason: a static vet the
  /// analysis layer consults before committing to the engine.
  [[nodiscard]] static const char* ineligible_reason(
      const sim::Simulator& sim, const net::Partition& partition);

  /// The static conservative window width for this (simulator, partition)
  /// pair: min over cut-edge floors fault-free, the global floor otherwise,
  /// and +infinity for a cut-free (single-shard) partition.  The adaptive
  /// window is never narrower than this.
  [[nodiscard]] static double lookahead_for(const sim::Simulator& sim,
                                            const net::Partition& partition);

  /// Runs every event with time <= horizon, in parallel, then dissolves the
  /// lanes.  Throws (after restoring the serial lane) on causality
  /// violations, runaway executions, or anything a process handler threw.
  /// Feeds the run's stall rate into PdesTuner on completion.
  void run_until(double horizon);

  [[nodiscard]] const PdesStats& stats() const noexcept { return stats_; }

 private:
  void setup(const net::Partition& partition,
             const std::vector<sim::TraceSink*>& lane_sinks);
  void dissolve();
  void worker(std::int32_t wi, double horizon);

  sim::Simulator& sim_;
  PdesStats stats_;
  bool live_ = false;  ///< lanes exist and must be dissolved

  // Epoch-loop shared state; see pdes.cpp.
  struct Shared;
  std::unique_ptr<Shared> shared_;
};

}  // namespace wlsync::engine
