#pragma once
// Conservative parallel discrete-event engine (PDES) over topology shards.
//
// The serial engine dispatches one global (time, tier, seq) order.  This
// engine partitions the process set into K shards (net/partition.h), gives
// each shard a private Simulator::Lane — event pool, scheduler, fan-out
// pool, clock — and a worker thread, and advances all lanes concurrently
// under the classic conservative-synchronization guarantee:
//
//   lookahead L = the delay model's greatest lower bound over the cut
//   (per-ordered-pair floors on the cut edges for fault-free runs; the
//   global floor when Byzantine processes are registered, since their
//   point-to-point sends ignore the topology).
//
// A message crossing the cut, sent at time >= T, arrives at >= T + L.  So
// if every lane's next local event is at >= T, all events with time
// STRICTLY BELOW T + L are safe to execute without hearing from other
// lanes.  The epoch loop exploits exactly that window:
//
//   phase 1   drain inbound channels into the lane's scheduler, report the
//             lane's next event time;
//   barrier   one thread folds the reports: T = min over lanes, window
//             W = T + L, termination (T > horizon), runaway guard
//             (summed max_events);
//   phase 2   run_lane up to just-below W (never past the horizon);
//             cross-cut sends land in per-destination outboxes as
//             sim::RemoteEvents — the sending lane has already drawn the
//             delay and allocated the seq from the SENDER's private
//             streams, so the values are exactly the serial engine's;
//   publish   move outboxes into the channel matrix (single writer and
//             single reader per cell, separated by the barriers);
//   barrier   repeat.
//
// This is the null-message/barrier hybrid: instead of per-channel null
// messages carrying per-link promises, one barrier per window publishes the
// global promise T + L.  For the dense, talkative exchange graphs this
// codebase simulates (every round every process broadcasts) the barrier
// amortizes better than O(cut) null traffic, and it makes termination and
// the runaway guard trivial.
//
// Bit-identity (the whole point): per-origin seq allocation, per-sender
// delay streams and the store-and-forward NIC (PR 6 groundwork) make the
// event order intrinsic to each process' execution rather than to a global
// insertion counter, so the sharded execution replays the serial one
// exactly — pinned by tests/pdes_test.cpp at results_identical strictness
// across topologies x delay models x fault mixes x worker counts.
//
// The engine never deadlocks (the barrier is global and every epoch makes
// progress: the event at T itself is inside the window) and never violates
// causality — and if a delay model ever under-promised its floor, the
// inbound drain throws rather than reordering ("PDES causality violation").

#include <cstdint>
#include <vector>

#include "net/partition.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace wlsync::engine {

struct PdesStats {
  std::int64_t epochs = 0;  ///< barrier windows executed
  /// Lane-epochs that dispatched zero events (idle lanes inside a window —
  /// the conservative overhead a tighter lookahead would reclaim).
  std::int64_t stalls = 0;
  std::int64_t cross_messages = 0;  ///< RemoteEvents carried over channels
  double lookahead = 0.0;           ///< the window width L (seconds)
  std::int32_t shards = 0;
};

/// One parallel run over an existing Simulator.  Construction shards the
/// simulator's pending events into per-shard lanes; run_until drives the
/// epoch loop with one worker thread per shard; destruction (or run_until
/// completing, whichever comes first) dissolves the lanes back into the
/// serial main lane, so the Simulator afterwards is indistinguishable from
/// one that ran serially — run_until can even continue past the parallel
/// horizon on the event engine.
class PdesEngine {
 public:
  /// `lane_sinks[i]` (optional, may be empty) is attached as shard i's
  /// trace sink; per-lane sinks see only their shard's events, in lane
  /// order, and the caller merges afterwards (RoundTrace::absorb).  The
  /// simulator's own main-lane sinks see nothing while the engine runs.
  PdesEngine(sim::Simulator& sim, const net::Partition& partition,
             std::vector<sim::TraceSink*> lane_sinks = {});
  ~PdesEngine();

  PdesEngine(const PdesEngine&) = delete;
  PdesEngine& operator=(const PdesEngine&) = delete;

  /// Why `sim` cannot run under this engine with `partition`, or nullptr if
  /// it can.  Mirrors RoundFastPath::ineligible_reason: a static vet the
  /// analysis layer consults before committing to the engine.
  [[nodiscard]] static const char* ineligible_reason(
      const sim::Simulator& sim, const net::Partition& partition);

  /// The conservative window width for this (simulator, partition) pair:
  /// min over cut-edge floors fault-free, the global floor otherwise, and
  /// +infinity for a cut-free (single-shard) partition.
  [[nodiscard]] static double lookahead_for(const sim::Simulator& sim,
                                            const net::Partition& partition);

  /// Runs every event with time <= horizon, in parallel, then dissolves the
  /// lanes.  Throws (after restoring the serial lane) on causality
  /// violations, runaway executions, or anything a process handler threw.
  void run_until(double horizon);

  [[nodiscard]] const PdesStats& stats() const noexcept { return stats_; }

 private:
  void setup(const net::Partition& partition,
             const std::vector<sim::TraceSink*>& lane_sinks);
  void dissolve();
  void worker(std::int32_t wi, double horizon);

  sim::Simulator& sim_;
  PdesStats stats_;
  bool live_ = false;  ///< lanes exist and must be dissolved

  // Epoch-loop shared state; see pdes.cpp.
  struct Shared;
  std::unique_ptr<Shared> shared_;
};

}  // namespace wlsync::engine
