#pragma once
// Pluggable event-scheduling policies for the execution engine.
//
// The Simulator owns the event payloads (a sim::EventPool slab pool) and a
// SchedulerPolicy that maintains priority order over the pooled handles.
// Every policy implements the same deterministic total order — ascending
// (time, tier, seq), i.e. sim::EventBefore — so the execution a Simulator
// produces is byte-identical regardless of which policy dispatches it.
// That invariant is what lets scheduler selection be a pure performance
// knob (and is pinned down by tests/engine_test.cpp).
//
// Policies:
//   kDaryHeap  — 4-ary indexed heap; O(log n), branch-light.
//   kCalendar  — Brown's calendar queue; amortized O(1) for workloads whose
//                event times are roughly uniform per window, the classic
//                choice of large discrete-event network simulators.
//   kAuto      — the default: starts on the d-ary heap and migrates the
//                pending set to the calendar queue when the observed depth
//                crosses ~1k events (where the calendar wins ~2.5x), back
//                when it falls low again.  Migration drains one policy into
//                the other; since every policy pops the same total order,
//                switching at any instant cannot change the execution.

#include <cstdint>
#include <memory>

#include "sim/event.h"

namespace wlsync::engine {

enum class SchedulerKind : std::uint8_t {
  kDaryHeap = 0,
  kCalendar = 1,
  /// The seed's data path — a std::priority_queue copying whole Events on
  /// every sift.  Kept as the measured baseline for bench_micro's
  /// event-throughput comparison; never the right choice in production.
  kLegacyHeap = 2,
  /// Depth-adaptive: d-ary heap below ~1k pending events, calendar queue
  /// above (hysteresis avoids thrashing at the boundary).  The default;
  /// pick an explicit policy via SimConfig/RunSpec to override.
  kAuto = 3,
};

[[nodiscard]] const char* scheduler_name(SchedulerKind kind) noexcept;

/// Priority order over handles into a sim::EventPool owned by the caller.
/// The pool reference handed to make_scheduler must outlive the policy.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Inserts a handle whose pooled payload is fully initialized (seq set).
  virtual void push(sim::EventHandle handle) = 0;

  /// Removes and returns the minimal handle; undefined when empty.
  virtual sim::EventHandle pop() = 0;

  /// Pops the minimal handle only if its time is <= `time`; returns
  /// kInvalidHandle when the queue is empty or the next event is later.
  /// The single per-event call of the run_until hot loop: policies answer
  /// from their cached keys without dereferencing the pool.
  virtual sim::EventHandle pop_if_not_after(double time) = 0;

  /// Returns the minimal handle without removing it; undefined when empty.
  [[nodiscard]] virtual sim::EventHandle peek() const = 0;

  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
};

[[nodiscard]] std::unique_ptr<SchedulerPolicy> make_scheduler(
    SchedulerKind kind, const sim::EventPool& pool);

}  // namespace wlsync::engine
