#pragma once
// Slab-pooled object storage with stable 32-bit handles.
//
// The discrete-event engine stores every pending Event payload exactly once
// and moves 4-byte handles through the scheduler instead of copying ~56-byte
// events on every heap sift.  Storage grows in fixed-size slabs, so a
// reference obtained from operator[] stays valid across later acquisitions
// — the dispatcher can hold the popped event by reference while the handler
// it invokes schedules new events into the same pool.
//
// Slots are recycled through a free list.  A recycled slot retains its stale
// contents; callers assign the full payload after acquire().

#include <cstdint>
#include <memory>
#include <vector>

namespace wlsync::engine {

template <typename T>
class SlabPool {
 public:
  using value_type = T;
  using Handle = std::uint32_t;
  static constexpr Handle kInvalidHandle = 0xFFFFFFFFu;

  /// Returns a handle to an uninitialized (or stale) slot.
  Handle acquire() {
    if (!free_.empty()) {
      const Handle handle = free_.back();
      free_.pop_back();
      ++live_;
      return handle;
    }
    const std::size_t slab = next_ >> kSlabShift;
    if (slab == slabs_.size()) {
      slabs_.push_back(std::make_unique<T[]>(kSlabSize));
    }
    ++live_;
    return static_cast<Handle>(next_++);
  }

  /// Returns the slot to the free list.  The handle must be live.
  void release(Handle handle) noexcept {
    free_.push_back(handle);
    --live_;
  }

  [[nodiscard]] T& operator[](Handle handle) noexcept {
    return slabs_[handle >> kSlabShift][handle & kSlabMask];
  }
  [[nodiscard]] const T& operator[](Handle handle) const noexcept {
    return slabs_[handle >> kSlabShift][handle & kSlabMask];
  }

  /// Number of live (acquired, unreleased) slots.
  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  /// Number of slots ever allocated (high-water mark).
  [[nodiscard]] std::size_t capacity() const noexcept { return next_; }

 private:
  static constexpr std::size_t kSlabShift = 10;
  static constexpr std::size_t kSlabSize = std::size_t{1} << kSlabShift;
  static constexpr std::size_t kSlabMask = kSlabSize - 1;

  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<Handle> free_;
  std::size_t next_ = 0;
  std::size_t live_ = 0;
};

}  // namespace wlsync::engine
