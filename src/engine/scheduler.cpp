#include "engine/scheduler.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

namespace wlsync::engine {

namespace {

using sim::Event;
using sim::EventAfter;
using sim::EventHandle;
using sim::EventKey;
using sim::EventKeyOf;
using sim::EventPool;
using sim::IndexedEventQueue;

// ----------------------------------------------------------- d-ary heap ---

class DAryHeapScheduler final : public SchedulerPolicy {
 public:
  explicit DAryHeapScheduler(const EventPool& pool) : queue_(pool) {}

  void push(EventHandle handle) override { queue_.push(handle); }
  EventHandle pop() override { return queue_.pop(); }
  EventHandle pop_if_not_after(double time) override {
    return queue_.pop_if(
        [time](const EventKey& key) { return key.time <= time; });
  }
  [[nodiscard]] EventHandle peek() const override { return queue_.top(); }
  [[nodiscard]] std::size_t size() const noexcept override {
    return queue_.size();
  }

 private:
  IndexedEventQueue queue_;
};

// ----------------------------------------------------------- legacy heap ---

/// The seed engine's exact cost profile: a binary std::priority_queue whose
/// sifts copy the full Event payload at every level.  Benchmarks compare
/// the pooled policies against this.
class LegacyHeapScheduler final : public SchedulerPolicy {
 public:
  explicit LegacyHeapScheduler(const EventPool& pool) : pool_(&pool) {}

  void push(EventHandle handle) override {
    queue_.push(Entry{(*pool_)[handle], handle});
  }
  EventHandle pop() override {
    const EventHandle handle = queue_.top().handle;
    queue_.pop();
    return handle;
  }
  EventHandle pop_if_not_after(double time) override {
    if (queue_.empty() || queue_.top().event.time > time) {
      return EventPool::kInvalidHandle;
    }
    return pop();
  }
  [[nodiscard]] EventHandle peek() const override {
    return queue_.top().handle;
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return queue_.size();
  }

 private:
  struct Entry {
    Event event;
    EventHandle handle;
  };
  struct After {
    [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const {
      return EventAfter{}(a.event, b.event);
    }
  };

  const EventPool* pool_;
  std::priority_queue<Entry, std::vector<Entry>, After> queue_;
};

// -------------------------------------------------------- calendar queue ---

// Brown's calendar queue over pooled handles.  The time axis is partitioned
// into integer cells of `width_` seconds (cell = floor(time / width_));
// bucket b holds every event whose cell is congruent to b modulo the
// (power-of-two) bucket count.  Each entry stores its cell, and *all*
// window logic — cursor resets on early pushes, the year-membership test
// during scans — compares those integers, never recomputed floating-point
// window bounds, so an event within an ulp of a window boundary cannot
// land on the wrong side of a guard.  The scan invariant is that no pending
// event's cell precedes cursor_cell_; dequeue scans cells forward from the
// cursor, and within the first populated cell picks the minimum by the full
// (time, tier, seq) key, so ties resolve identically to the heap policies.
class CalendarQueueScheduler final : public SchedulerPolicy {
 public:
  explicit CalendarQueueScheduler(const EventPool& pool) : pool_(&pool) {
    buckets_.resize(kMinBuckets);
  }

  void push(EventHandle handle) override {
    cache_valid_ = false;
    const EventKey key = EventKeyOf{}((*pool_)[handle]);
    const std::int64_t cell = cell_of(key.time);
    // Keep the scan invariant: never let an event slip behind the cursor.
    if (cell < cursor_cell_) cursor_cell_ = cell;
    buckets_[bucket_of(cell)].push_back(Entry{key, cell, handle});
    ++size_;
    if (size_ > buckets_.size() * 2) rebuild(buckets_.size() * 2);
  }

  EventHandle pop() override {
    if (!cache_valid_) locate_min();
    std::vector<Entry>& bucket = buckets_[cache_bucket_];
    const EventHandle handle = bucket[cache_pos_].handle;
    cursor_cell_ = bucket[cache_pos_].cell;
    bucket[cache_pos_] = bucket.back();
    bucket.pop_back();
    --size_;
    cache_valid_ = false;
    if (buckets_.size() > kMinBuckets && size_ * 4 < buckets_.size()) {
      rebuild(buckets_.size() / 2);
    }
    return handle;
  }

  EventHandle pop_if_not_after(double time) override {
    if (size_ == 0) return EventPool::kInvalidHandle;
    if (!cache_valid_) locate_min();
    if (buckets_[cache_bucket_][cache_pos_].key.time > time) {
      return EventPool::kInvalidHandle;
    }
    return pop();
  }

  [[nodiscard]] EventHandle peek() const override {
    if (!cache_valid_) locate_min();
    return buckets_[cache_bucket_][cache_pos_].handle;
  }

  [[nodiscard]] std::size_t size() const noexcept override { return size_; }

 private:
  struct Entry {
    EventKey key;
    std::int64_t cell;  ///< floor(key.time / width_) at insertion
    EventHandle handle;
  };

  static constexpr std::size_t kMinBuckets = 8;
  static constexpr double kMinWidth = 1e-9;
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  [[nodiscard]] std::int64_t cell_of(double time) const noexcept {
    return static_cast<std::int64_t>(std::floor(time / width_));
  }
  [[nodiscard]] std::size_t bucket_of(std::int64_t cell) const noexcept {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(cell) &
                                    (buckets_.size() - 1));
  }

  /// Finds the EventBefore-minimal entry; fills the cache.  size_ > 0.
  void locate_min() const {
    for (std::size_t lap = 0; lap < buckets_.size(); ++lap) {
      const std::int64_t cell = cursor_cell_ + static_cast<std::int64_t>(lap);
      const std::vector<Entry>& bucket = buckets_[bucket_of(cell)];
      std::size_t best = kNone;
      for (std::size_t pos = 0; pos < bucket.size(); ++pos) {
        if (bucket[pos].cell != cell) continue;  // a later year
        if (best == kNone || bucket[pos].key < bucket[best].key) {
          best = pos;
        }
      }
      if (best != kNone) {
        cache_bucket_ = bucket_of(cell);
        cache_pos_ = best;
        cache_valid_ = true;
        return;
      }
    }
    // A whole year is empty: direct search over everything.  (The pop that
    // follows parks the cursor at the found entry's cell.)
    const Entry* best = nullptr;
    for (std::size_t bb = 0; bb < buckets_.size(); ++bb) {
      const std::vector<Entry>& bucket = buckets_[bb];
      for (std::size_t pos = 0; pos < bucket.size(); ++pos) {
        if (best == nullptr || bucket[pos].key < best->key) {
          best = &bucket[pos];
          cache_bucket_ = bb;
          cache_pos_ = pos;
        }
      }
    }
    cache_valid_ = true;
  }

  /// Re-buckets everything into `count` buckets with a width matched to the
  /// current event-time span (~3x the mean inter-event gap).  Entry cells
  /// are recomputed because the cell grid changes with the width.
  void rebuild(std::size_t count) {
    std::vector<Entry> pending;
    pending.reserve(size_);
    for (std::vector<Entry>& bucket : buckets_) {
      pending.insert(pending.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    buckets_.resize(count);

    double lo = 0.0;
    double hi = 0.0;
    if (!pending.empty()) {
      lo = hi = pending.front().key.time;
      for (const Entry& entry : pending) {
        lo = std::min(lo, entry.key.time);
        hi = std::max(hi, entry.key.time);
      }
    }
    const double span = hi - lo;
    width_ = std::max(
        3.0 * span /
            static_cast<double>(std::max<std::size_t>(pending.size(), 1)),
        kMinWidth);
    cursor_cell_ = cell_of(lo);
    for (Entry entry : pending) {
      entry.cell = cell_of(entry.key.time);
      buckets_[bucket_of(entry.cell)].push_back(entry);
    }
    cache_valid_ = false;
  }

  const EventPool* pool_;
  std::vector<std::vector<Entry>> buckets_;
  double width_ = 1.0;
  std::size_t size_ = 0;
  std::int64_t cursor_cell_ = 0;  ///< scan start; <= every pending cell
  // peek()/pop() share one located minimum so run_until's peek-then-step
  // pattern pays for a single scan per event.
  mutable bool cache_valid_ = false;
  mutable std::size_t cache_bucket_ = 0;
  mutable std::size_t cache_pos_ = 0;
};

// ------------------------------------------------------------------ auto ---

/// Depth-adaptive policy (the ROADMAP item PR 1 left manual): a d-ary heap
/// while the pending set is small, the calendar queue once it grows past
/// kCalendarAt.  Wide hysteresis (migrate back only below kHeapAt) keeps
/// workloads that oscillate around the threshold from paying the O(k log k)
/// migration repeatedly.  Selection depends only on the pending-set size,
/// which is itself determined by the deterministic execution — and since
/// every policy pops the identical (time, tier, seq) order, the switch is
/// invisible to results whenever it happens.
class AutoScheduler final : public SchedulerPolicy {
 public:
  explicit AutoScheduler(const sim::EventPool& pool)
      : heap_(pool), calendar_(pool), active_(&heap_) {}

  void push(sim::EventHandle handle) override {
    active_->push(handle);
    if (active_ == &heap_ && heap_.size() >= kCalendarAt) {
      migrate(&heap_, &calendar_);
    }
  }
  sim::EventHandle pop() override {
    const sim::EventHandle handle = active_->pop();
    maybe_downshift();
    return handle;
  }
  sim::EventHandle pop_if_not_after(double time) override {
    const sim::EventHandle handle = active_->pop_if_not_after(time);
    if (handle != sim::EventPool::kInvalidHandle) maybe_downshift();
    return handle;
  }
  [[nodiscard]] sim::EventHandle peek() const override {
    return active_->peek();
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return active_->size();
  }

 private:
  static constexpr std::size_t kCalendarAt = 1024;
  static constexpr std::size_t kHeapAt = 192;

  void maybe_downshift() {
    if (active_ == &calendar_ && calendar_.size() <= kHeapAt) {
      migrate(&calendar_, &heap_);
    }
  }
  void migrate(SchedulerPolicy* from, SchedulerPolicy* to) {
    while (from->size() > 0) to->push(from->pop());
    active_ = to;
  }

  DAryHeapScheduler heap_;
  CalendarQueueScheduler calendar_;
  SchedulerPolicy* active_;
};

}  // namespace

const char* scheduler_name(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kDaryHeap: return "d-ary-heap";
    case SchedulerKind::kCalendar: return "calendar";
    case SchedulerKind::kLegacyHeap: return "legacy-heap";
    case SchedulerKind::kAuto: return "auto";
  }
  return "?";
}

std::unique_ptr<SchedulerPolicy> make_scheduler(SchedulerKind kind,
                                                const sim::EventPool& pool) {
  switch (kind) {
    case SchedulerKind::kDaryHeap:
      return std::make_unique<DAryHeapScheduler>(pool);
    case SchedulerKind::kCalendar:
      return std::make_unique<CalendarQueueScheduler>(pool);
    case SchedulerKind::kLegacyHeap:
      return std::make_unique<LegacyHeapScheduler>(pool);
    case SchedulerKind::kAuto:
      return std::make_unique<AutoScheduler>(pool);
  }
  throw std::invalid_argument("make_scheduler: unknown SchedulerKind");
}

}  // namespace wlsync::engine
