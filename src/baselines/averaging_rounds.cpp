#include "baselines/averaging_rounds.h"

#include <cmath>

namespace wlsync::baselines {

namespace {
constexpr std::int32_t kBcastTimer = 1;
constexpr std::int32_t kUpdateTimer = 2;
}  // namespace

RoundExchangeProcess::RoundExchangeProcess(core::Params params,
                                           proc::IngestMode ingest)
    : params_(params), derived_(core::derive(params)), ingest_(ingest) {
  if (ingest_ == proc::IngestMode::kLegacy) {
    diff_.assign(static_cast<std::size_t>(params_.n), core::kNeverArrived);
  }
  label_ = params_.T0;
}

void RoundExchangeProcess::ensure_arena(const proc::Context& ctx) {
  if (!arena_.bound()) {
    arena_.bind(ctx.neighbors(), ctx.process_count(), core::kNeverArrived);
  }
}

const std::vector<double>& RoundExchangeProcess::round_values(
    const proc::Context& ctx) {
  if (ingest_ == proc::IngestMode::kLegacy) {
    // Project the per-id estimates onto the neighbor view: one slot per
    // exchange-graph neighbor, own slot pinned to 0 (our clock is 0 away
    // from itself).  On the full mesh this is the historical all-n vector,
    // bit for bit.
    const std::span<const std::int32_t> peers = ctx.neighbors();
    values_.clear();
    values_.reserve(peers.size());
    for (std::int32_t q : peers) {
      values_.push_back(q == ctx.id() ? 0.0
                                      : diff_[static_cast<std::size_t>(q)]);
    }
    return values_;
  }
  // Dense mode: the arena already IS the neighbor view; force the own slot
  // to 0.0 (a self-delivered broadcast wrote an estimate there, which the
  // legacy gather also discarded) and hand the adjustment rule the arena's
  // storage directly — no per-round gather.
  ensure_arena(ctx);
  const std::int32_t own = arena_.slot_of(ctx.id());
  if (own >= 0) arena_.set_slot(static_cast<std::size_t>(own), 0.0);
  return arena_.values();
}

void RoundExchangeProcess::reset_round(const proc::Context& ctx) {
  if (ingest_ == proc::IngestMode::kLegacy) {
    diff_.assign(static_cast<std::size_t>(params_.n), core::kNeverArrived);
    return;
  }
  ensure_arena(ctx);
  arena_.fill(core::kNeverArrived);  // O(degree), not O(n)
}

void RoundExchangeProcess::begin_round(proc::Context& ctx) {
  ctx.annotate({proc::Annotation::Type::kRoundBegin, round_, label_, 0.0});
  ctx.broadcast(core::kTimeTag, label_, round_);
  ctx.set_timer(label_ + derived_.window, kUpdateTimer);
}

void RoundExchangeProcess::on_start(proc::Context& ctx) {
  if (started_) return;
  started_ = true;
  begin_round(ctx);
}

void RoundExchangeProcess::on_message(proc::Context& ctx, const sim::Message& m) {
  if (m.tag != core::kTimeTag) return;
  // Estimate of how far ahead q's clock is, assuming the delay was delta.
  const double estimate = m.value + params_.delta - ctx.local_time();
  if (ingest_ == proc::IngestMode::kLegacy) {
    diff_[static_cast<std::size_t>(m.from)] = estimate;
  } else {
    if (!arena_.bound()) ensure_arena(ctx);
    arena_.record(m.from, estimate);
  }
}

void RoundExchangeProcess::on_timer(proc::Context& ctx, std::int32_t tag) {
  switch (tag) {
    case kBcastTimer:
      begin_round(ctx);
      break;
    case kUpdateTimer: {
      const double adj = compute_adjustment(round_values(ctx));
      last_adj_ = adj;
      ctx.add_corr(adj);
      ctx.annotate({proc::Annotation::Type::kUpdate, round_, adj, 0.0});
      reset_round(ctx);
      ++round_;
      label_ += params_.P;
      ctx.set_timer(label_, kBcastTimer);
      break;
    }
    default:
      break;
  }
}

double InteractiveConvergenceProcess::compute_adjustment(
    const std::vector<double>& diffs) const {
  // CNV: replace values differing from our own (0) by more than delta_max
  // with 0, then average the whole neighbor view.
  double sum = 0.0;
  for (double v : diffs) {
    if (v == core::kNeverArrived || std::abs(v) > delta_max_) v = 0.0;
    sum += v;
  }
  return sum / static_cast<double>(diffs.size());
}

double MahaneySchneiderProcess::compute_adjustment(
    const std::vector<double>& diffs) const {
  // A value is acceptable if >= peers - f values (itself included) lie
  // within tau of it; unacceptable or missing values are replaced by our
  // own (0).  `peers` is the neighbor view — params().n on the full mesh.
  const auto n = diffs.size();
  // Guard sparse neighbor views smaller than f: never require fewer than
  // one supporter (the value itself).
  const auto f = static_cast<std::size_t>(params().f);
  const std::size_t needed = n > f ? n - f : 1;
  double sum = 0.0;
  for (std::size_t q = 0; q < n; ++q) {
    double v = diffs[q];
    if (v == core::kNeverArrived) {
      sum += 0.0;
      continue;
    }
    std::size_t close = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (diffs[r] != core::kNeverArrived && std::abs(diffs[r] - v) <= tau_) {
        ++close;
      }
    }
    if (close < needed) v = 0.0;
    sum += v;
  }
  return sum / static_cast<double>(n);
}

double PlainMeanProcess::compute_adjustment(
    const std::vector<double>& diffs) const {
  double sum = 0.0;
  for (double v : diffs) {
    if (v == core::kNeverArrived) v = 0.0;
    sum += v;  // no clipping: one liar can drag the mean anywhere
  }
  return sum / static_cast<double>(diffs.size());
}

}  // namespace wlsync::baselines
