#include "baselines/averaging_rounds.h"

#include <cmath>

namespace wlsync::baselines {

namespace {
constexpr std::int32_t kBcastTimer = 1;
constexpr std::int32_t kUpdateTimer = 2;
}  // namespace

RoundExchangeProcess::RoundExchangeProcess(core::Params params)
    : params_(params), derived_(core::derive(params)) {
  diff_.assign(static_cast<std::size_t>(params_.n), core::kNeverArrived);
  label_ = params_.T0;
}

void RoundExchangeProcess::begin_round(proc::Context& ctx) {
  ctx.annotate({proc::Annotation::Type::kRoundBegin, round_, label_, 0.0});
  ctx.broadcast(core::kTimeTag, label_, round_);
  ctx.set_timer(label_ + derived_.window, kUpdateTimer);
}

void RoundExchangeProcess::on_start(proc::Context& ctx) {
  if (started_) return;
  started_ = true;
  begin_round(ctx);
}

void RoundExchangeProcess::on_message(proc::Context& ctx, const sim::Message& m) {
  if (m.tag != core::kTimeTag) return;
  // Estimate of how far ahead q's clock is, assuming the delay was delta.
  diff_[static_cast<std::size_t>(m.from)] =
      m.value + params_.delta - ctx.local_time();
}

void RoundExchangeProcess::on_timer(proc::Context& ctx, std::int32_t tag) {
  switch (tag) {
    case kBcastTimer:
      begin_round(ctx);
      break;
    case kUpdateTimer: {
      const double adj = compute_adjustment(diff_, ctx.id());
      last_adj_ = adj;
      ctx.add_corr(adj);
      ctx.annotate({proc::Annotation::Type::kUpdate, round_, adj, 0.0});
      diff_.assign(static_cast<std::size_t>(params_.n), core::kNeverArrived);
      ++round_;
      label_ += params_.P;
      ctx.set_timer(label_, kBcastTimer);
      break;
    }
    default:
      break;
  }
}

double InteractiveConvergenceProcess::compute_adjustment(
    const std::vector<double>& diffs, std::int32_t self) const {
  // CNV: replace values differing from our own (0) by more than delta_max
  // with 0, then average all n.
  double sum = 0.0;
  for (std::size_t q = 0; q < diffs.size(); ++q) {
    double v = static_cast<std::int32_t>(q) == self ? 0.0 : diffs[q];
    if (v == core::kNeverArrived || std::abs(v) > delta_max_) v = 0.0;
    sum += v;
  }
  return sum / static_cast<double>(diffs.size());
}

double MahaneySchneiderProcess::compute_adjustment(
    const std::vector<double>& diffs, std::int32_t self) const {
  const auto n = diffs.size();
  std::vector<double> values(n);
  for (std::size_t q = 0; q < n; ++q) {
    const double v = static_cast<std::int32_t>(q) == self ? 0.0 : diffs[q];
    values[q] = v;
  }
  // A value is acceptable if >= n - f values (itself included) lie within
  // tau of it; unacceptable or missing values are replaced by our own (0).
  const auto needed =
      static_cast<std::size_t>(params().n - params().f);
  double sum = 0.0;
  for (std::size_t q = 0; q < n; ++q) {
    double v = values[q];
    if (v == core::kNeverArrived) {
      sum += 0.0;
      continue;
    }
    std::size_t close = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (values[r] != core::kNeverArrived && std::abs(values[r] - v) <= tau_) {
        ++close;
      }
    }
    if (close < needed) v = 0.0;
    sum += v;
  }
  return sum / static_cast<double>(n);
}

double PlainMeanProcess::compute_adjustment(const std::vector<double>& diffs,
                                            std::int32_t self) const {
  double sum = 0.0;
  for (std::size_t q = 0; q < diffs.size(); ++q) {
    double v = static_cast<std::int32_t>(q) == self ? 0.0 : diffs[q];
    if (v == core::kNeverArrived) v = 0.0;
    sum += v;  // no clipping: one liar can drag the mean anywhere
  }
  return sum / static_cast<double>(diffs.size());
}

}  // namespace wlsync::baselines
