#include "baselines/srikanth_toueg.h"

#include <algorithm>

namespace wlsync::baselines {

namespace {
constexpr std::int32_t kRoundTimer = 1;
}

void SrikanthTouegProcess::on_start(proc::Context& ctx) {
  if (started_) return;
  started_ = true;
  // First broadcast when the logical clock reaches T0 + P (round 1).
  ctx.set_timer(params_.round_label(1), kRoundTimer);
}

void SrikanthTouegProcess::maybe_broadcast(proc::Context& ctx, std::int32_t k) {
  if (sent_.contains(k)) return;
  sent_.insert(k);
  ctx.broadcast(kTickTag, 0.0, k);
  // Annotate 0-based so analysis round indices line up with other algorithms
  // (ST's first broadcast is its round "k = 1").
  ctx.annotate(
      {proc::Annotation::Type::kRoundBegin, k - 1, ctx.local_time(), 0.0});
}

void SrikanthTouegProcess::on_timer(proc::Context& ctx, std::int32_t) {
  // The clock reached the next round label.
  const std::int32_t k = accepted_ + 1;
  maybe_broadcast(ctx, k);
}

SrikanthTouegProcess::RoundTally& SrikanthTouegProcess::tally_for(
    std::int32_t k) {
  // Pending rounds stay ascending; in steady state there are one or two, so
  // the scan is a couple of comparisons.
  auto it = std::lower_bound(
      active_.begin(), active_.end(), k,
      [](const RoundTally& t, std::int32_t round) { return t.round < round; });
  if (it != active_.end() && it->round == k) return *it;
  RoundTally fresh;
  if (!free_.empty()) {
    fresh = std::move(free_.back());  // retains seen/extras capacity
    free_.pop_back();
  }
  fresh.round = k;
  fresh.count = 0;
  fresh.seen.assign((index_.size() + 63) / 64, 0);
  fresh.extras.clear();
  return *active_.insert(it, std::move(fresh));
}

std::int32_t SrikanthTouegProcess::note_sender(proc::Context& ctx,
                                               std::int32_t k,
                                               std::int32_t from) {
  if (ingest_ == proc::IngestMode::kLegacy) {
    auto& senders = heard_[k];
    senders.insert(from);
    return static_cast<std::int32_t>(senders.size());
  }
  if (!index_.bound()) index_.bind(ctx.neighbors(), ctx.process_count());
  RoundTally& tally = tally_for(k);
  const std::int32_t slot = index_.slot_of(from);
  if (slot >= 0) {
    const auto word = static_cast<std::size_t>(slot) / 64;
    const std::uint64_t bit = std::uint64_t{1}
                              << (static_cast<std::size_t>(slot) % 64);
    if ((tally.seen[word] & bit) == 0) {
      tally.seen[word] |= bit;
      ++tally.count;
    }
  } else if (std::find(tally.extras.begin(), tally.extras.end(), from) ==
             tally.extras.end()) {
    // Point-to-point send from outside the neighborhood (an adversary
    // power); the legacy set counted it, so the flat path must too.
    tally.extras.push_back(from);
    ++tally.count;
  }
  return tally.count;
}

void SrikanthTouegProcess::drop_through(std::int32_t k) {
  if (ingest_ == proc::IngestMode::kLegacy) {
    heard_.erase(heard_.begin(), heard_.upper_bound(k));
    return;
  }
  auto it = active_.begin();
  while (it != active_.end() && it->round <= k) {
    free_.push_back(std::move(*it));  // recycle the bitset storage
    it = active_.erase(it);
  }
}

void SrikanthTouegProcess::on_message(proc::Context& ctx, const sim::Message& m) {
  if (m.tag != kTickTag) return;
  const std::int32_t k = m.aux;
  if (k <= accepted_) return;  // stale round
  const std::int32_t count = note_sender(ctx, k, m.from);
  // Quorums are f-based, but a process can only ever hear its exchange-graph
  // neighbors: clamp so sparse topologies (neighbor view < 2f+1) degrade to
  // neighborhood-unanimity instead of deadlocking.  On the paper's full
  // mesh (n >= 3f+1 neighbors) the clamps are no-ops.
  const std::int32_t accept_quorum =
      std::min(2 * params_.f + 1, ctx.neighbor_count());
  const std::int32_t relay_quorum = std::min(params_.f + 1, accept_quorum);
  if (count >= relay_quorum) {
    // Enough distinct senders include an honest one: join the broadcast even
    // if our own clock has not reached kP yet (the relay rule).
    maybe_broadcast(ctx, k);
  }
  if (count >= accept_quorum) accept(ctx, k);
}

void SrikanthTouegProcess::accept(proc::Context& ctx, std::int32_t k) {
  // Resynchronize: the earliest honest (round k) broadcast left when its
  // sender's clock read kP, about delta ago.
  const double target = params_.round_label(k) + params_.delta;
  const double adj = target - ctx.local_time();
  last_adj_ = adj;
  ctx.add_corr(adj);
  accepted_ = k;
  drop_through(k);
  ctx.annotate({proc::Annotation::Type::kUpdate, k - 1, adj, 0.0});
  // Schedule the next round on the new clock.
  ctx.set_timer(params_.round_label(k + 1), kRoundTimer);
}

}  // namespace wlsync::baselines
