#include "baselines/srikanth_toueg.h"

namespace wlsync::baselines {

namespace {
constexpr std::int32_t kRoundTimer = 1;
}

void SrikanthTouegProcess::on_start(proc::Context& ctx) {
  if (started_) return;
  started_ = true;
  // First broadcast when the logical clock reaches T0 + P (round 1).
  ctx.set_timer(params_.round_label(1), kRoundTimer);
}

void SrikanthTouegProcess::maybe_broadcast(proc::Context& ctx, std::int32_t k) {
  if (sent_.contains(k)) return;
  sent_.insert(k);
  ctx.broadcast(kTickTag, 0.0, k);
  // Annotate 0-based so analysis round indices line up with other algorithms
  // (ST's first broadcast is its round "k = 1").
  ctx.annotate(
      {proc::Annotation::Type::kRoundBegin, k - 1, ctx.local_time(), 0.0});
}

void SrikanthTouegProcess::on_timer(proc::Context& ctx, std::int32_t) {
  // The clock reached the next round label.
  const std::int32_t k = accepted_ + 1;
  maybe_broadcast(ctx, k);
}

void SrikanthTouegProcess::on_message(proc::Context& ctx, const sim::Message& m) {
  if (m.tag != kTickTag) return;
  const std::int32_t k = m.aux;
  if (k <= accepted_) return;  // stale round
  auto& senders = heard_[k];
  senders.insert(m.from);
  const auto count = static_cast<std::int32_t>(senders.size());
  // Quorums are f-based, but a process can only ever hear its exchange-graph
  // neighbors: clamp so sparse topologies (neighbor view < 2f+1) degrade to
  // neighborhood-unanimity instead of deadlocking.  On the paper's full
  // mesh (n >= 3f+1 neighbors) the clamps are no-ops.
  const std::int32_t accept_quorum =
      std::min(2 * params_.f + 1, ctx.neighbor_count());
  const std::int32_t relay_quorum = std::min(params_.f + 1, accept_quorum);
  if (count >= relay_quorum) {
    // Enough distinct senders include an honest one: join the broadcast even
    // if our own clock has not reached kP yet (the relay rule).
    maybe_broadcast(ctx, k);
  }
  if (count >= accept_quorum) accept(ctx, k);
}

void SrikanthTouegProcess::accept(proc::Context& ctx, std::int32_t k) {
  // Resynchronize: the earliest honest (round k) broadcast left when its
  // sender's clock read kP, about delta ago.
  const double target = params_.round_label(k) + params_.delta;
  const double adj = target - ctx.local_time();
  last_adj_ = adj;
  ctx.add_corr(adj);
  accepted_ = k;
  heard_.erase(heard_.begin(), heard_.upper_bound(k));
  ctx.annotate({proc::Annotation::Type::kUpdate, k - 1, adj, 0.0});
  // Schedule the next round on the new clock.
  ctx.set_timer(params_.round_label(k + 1), kRoundTimer);
}

}  // namespace wlsync::baselines
