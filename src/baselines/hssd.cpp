#include "baselines/hssd.h"

#include <cmath>

namespace wlsync::baselines {

namespace {
constexpr std::int32_t kRoundTimer = 1;
}

void HssdProcess::on_start(proc::Context& ctx) {
  if (started_) return;
  started_ = true;
  ctx.set_timer(params_.round_label(1), kRoundTimer);
}

void HssdProcess::on_timer(proc::Context& ctx, std::int32_t) {
  // Our clock reached the next scheduled label: begin the round ourselves
  // (no adjustment needed — we are on time) and start a fresh chain.
  const std::int32_t k = last_accepted_ + 1;
  if (ctx.local_time() + 1e-12 < params_.round_label(k)) return;  // stale
  accept(ctx, k, /*signatures=*/0);
}

void HssdProcess::on_message(proc::Context& ctx, const sim::Message& m) {
  if (m.tag != kSignedTag) return;
  const auto i = static_cast<std::int32_t>(
      std::llround((m.value - params_.T0) / params_.P));
  if (i <= last_accepted_) return;  // old round
  const std::int32_t signatures = m.aux;
  if (signatures < 1) return;  // malformed chain
  // Timeliness test: a k-signature chain took at least k hops of at least
  // (delta - eps) each... the paper's test is against the maximum: reject
  // chains that arrive longer than k(delta+eps) before the label.
  const double earliest = params_.round_label(i) -
                          static_cast<double>(signatures) * (1.0 + params_.rho) *
                              (params_.delta + params_.eps);
  if (ctx.local_time() + 1e-12 < earliest) return;  // too early: not timely
  accept(ctx, i, signatures);
}

void HssdProcess::accept(proc::Context& ctx, std::int32_t round,
                         std::int32_t signatures) {
  // Advance (never retard) the clock to the label and relay with our
  // signature appended.
  const double adj = params_.round_label(round) - ctx.local_time();
  last_adj_ = adj;
  if (adj > 0.0) ctx.add_corr(adj);
  last_accepted_ = round;
  ctx.annotate({proc::Annotation::Type::kRoundBegin, round - 1,
                ctx.local_time(), 0.0});
  ctx.annotate(
      {proc::Annotation::Type::kUpdate, round - 1, adj > 0 ? adj : 0.0, 0.0});
  ctx.broadcast(kSignedTag, params_.round_label(round), signatures + 1);
  ctx.set_timer(params_.round_label(round + 1), kRoundTimer);
}

}  // namespace wlsync::baselines
