#pragma once
// Srikanth & Toueg's clock synchronization algorithm [ST] (Section 10).
//
// Structure (the n > 3f, no-signatures variant): when a process' logical
// clock reaches kP it broadcasts (round k).  A process that has received
// round-k messages from f+1 distinct senders joins the broadcast (at least
// one sender was honest, so the time must be near); on 2f+1 distinct
// senders it *accepts* round k and resets its logical clock to kP + delta
// (the expected age of the earliest honest broadcast).  Acceptance is
// monotone in k; stale rounds are ignored.
//
// The paper's comparison says agreement is about delta + eps (better or
// worse than Welch-Lynch's ~4 eps depending on the relative sizes), the
// adjustment is about 3(delta + eps), and validity is optimal.  EXP-COMPARE
// checks those shapes on the shared substrate.
//
// Ingestion: the distinct-sender tallies are the [ST] hot path — one set
// insertion per delivery.  In IngestMode::kArena the per-round sender sets
// are flat bitsets over dense neighbor slots (proc::NeighborIndex), pooled
// and recycled across rounds so steady-state deliveries allocate nothing;
// senders outside the bound neighborhood (possible only for point-to-point
// adversary sends) fall back to a small per-round overflow list.  kLegacy
// keeps the seed's std::map<round, std::set<sender>> as the pinned
// reference (tests/ingest_pin_test.cpp).

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/params.h"
#include "proc/arrival.h"
#include "proc/process.h"

namespace wlsync::baselines {

inline constexpr std::int32_t kTickTag = 3;

class SrikanthTouegProcess final : public proc::Process {
 public:
  explicit SrikanthTouegProcess(
      core::Params params, proc::IngestMode ingest = proc::IngestMode::kArena)
      : params_(params), ingest_(ingest) {}

  void on_start(proc::Context& ctx) override;
  void on_timer(proc::Context& ctx, std::int32_t tag) override;
  void on_message(proc::Context& ctx, const sim::Message& m) override;

  [[nodiscard]] std::int32_t round() const noexcept { return accepted_; }
  [[nodiscard]] double last_adjustment() const noexcept { return last_adj_; }

 private:
  /// Distinct senders heard for a pending (not yet accepted) round.
  struct RoundTally {
    std::int32_t round = 0;
    std::int32_t count = 0;                 ///< distinct senders so far
    std::vector<std::uint64_t> seen;        ///< bitset over dense slots
    std::vector<std::int32_t> extras;       ///< non-neighbor senders (rare)
  };

  void maybe_broadcast(proc::Context& ctx, std::int32_t k);
  void accept(proc::Context& ctx, std::int32_t k);
  /// Registers `from` as a sender for round k and returns the number of
  /// distinct senders heard for k (identical in both ingestion modes).
  [[nodiscard]] std::int32_t note_sender(proc::Context& ctx, std::int32_t k,
                                         std::int32_t from);
  /// Drops tallies for every round <= k (post-acceptance cleanup).
  void drop_through(std::int32_t k);
  [[nodiscard]] RoundTally& tally_for(std::int32_t k);

  core::Params params_;
  proc::IngestMode ingest_;
  // --- arena mode ---
  proc::NeighborIndex index_;
  std::vector<RoundTally> active_;  ///< pending rounds, ascending by round
  std::vector<RoundTally> free_;    ///< recycled tallies (capacity retained)
  // --- legacy mode ---
  std::map<std::int32_t, std::set<std::int32_t>> heard_;  ///< senders per round
  std::set<std::int32_t> sent_;                           ///< rounds broadcast
  std::int32_t accepted_ = 0;  ///< highest accepted round
  double last_adj_ = 0.0;
  bool started_ = false;
};

}  // namespace wlsync::baselines
