#pragma once
// Srikanth & Toueg's clock synchronization algorithm [ST] (Section 10).
//
// Structure (the n > 3f, no-signatures variant): when a process' logical
// clock reaches kP it broadcasts (round k).  A process that has received
// round-k messages from f+1 distinct senders joins the broadcast (at least
// one sender was honest, so the time must be near); on 2f+1 distinct
// senders it *accepts* round k and resets its logical clock to kP + delta
// (the expected age of the earliest honest broadcast).  Acceptance is
// monotone in k; stale rounds are ignored.
//
// The paper's comparison says agreement is about delta + eps (better or
// worse than Welch-Lynch's ~4 eps depending on the relative sizes), the
// adjustment is about 3(delta + eps), and validity is optimal.  EXP-COMPARE
// checks those shapes on the shared substrate.

#include <cstdint>
#include <map>
#include <set>

#include "core/params.h"
#include "proc/process.h"

namespace wlsync::baselines {

inline constexpr std::int32_t kTickTag = 3;

class SrikanthTouegProcess final : public proc::Process {
 public:
  explicit SrikanthTouegProcess(core::Params params) : params_(params) {}

  void on_start(proc::Context& ctx) override;
  void on_timer(proc::Context& ctx, std::int32_t tag) override;
  void on_message(proc::Context& ctx, const sim::Message& m) override;

  [[nodiscard]] std::int32_t round() const noexcept { return accepted_; }
  [[nodiscard]] double last_adjustment() const noexcept { return last_adj_; }

 private:
  void maybe_broadcast(proc::Context& ctx, std::int32_t k);
  void accept(proc::Context& ctx, std::int32_t k);

  core::Params params_;
  std::map<std::int32_t, std::set<std::int32_t>> heard_;  ///< senders per round
  std::set<std::int32_t> sent_;                           ///< rounds broadcast
  std::int32_t accepted_ = 0;  ///< highest accepted round
  double last_adj_ = 0.0;
  bool started_ = false;
};

}  // namespace wlsync::baselines
