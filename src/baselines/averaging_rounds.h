#pragma once
// Shared round structure for the averaging-style comparison algorithms of
// Section 10 ([LM], [MS], and the no-fault-tolerance ablation).
//
// All three run the same schedule as the Welch-Lynch maintenance algorithm
// (round at T^i = T0 + iP, collect for (1+rho)(beta+delta+eps), adjust) but
// differ in how the collected clock-difference estimates are combined.
// Unlike Welch-Lynch — which averages raw *arrival times* — these exchange
// explicit clock values: on receipt of q's round message, the recipient
// estimates DIFF[q] = T_q + delta - local_time(), the amount q's clock is
// ahead.  Estimates reset every round.

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "core/welch_lynch.h"
#include "proc/process.h"

namespace wlsync::baselines {

/// Base class: subclasses provide the averaging rule.
class RoundExchangeProcess : public proc::Process {
 public:
  explicit RoundExchangeProcess(
      core::Params params,
      proc::IngestMode ingest = proc::IngestMode::kArena);

  void on_start(proc::Context& ctx) override;
  void on_timer(proc::Context& ctx, std::int32_t tag) override;
  void on_message(proc::Context& ctx, const sim::Message& m) override;

  [[nodiscard]] std::int32_t round() const noexcept { return round_; }
  [[nodiscard]] double last_adjustment() const noexcept { return last_adj_; }

 protected:
  /// Combines this round's difference estimates into a clock adjustment.
  /// `diffs` holds one entry per *neighbor* (the caller's exchange-graph
  /// view, which is every process on the paper's full mesh), in neighbor
  /// order: the estimate for that neighbor, core::kNeverArrived if no
  /// message arrived, and exactly 0.0 for the caller's own slot.
  [[nodiscard]] virtual double compute_adjustment(
      const std::vector<double>& diffs) const = 0;

  [[nodiscard]] const core::Params& params() const noexcept { return params_; }

 private:
  void begin_round(proc::Context& ctx);
  void ensure_arena(const proc::Context& ctx);
  /// The neighbor-view estimate vector for this round's adjustment, with
  /// the caller's own slot pinned to 0.0 — the dense arena in arena mode,
  /// the gathered values_ scratch in legacy mode.
  [[nodiscard]] const std::vector<double>& round_values(
      const proc::Context& ctx);
  void reset_round(const proc::Context& ctx);

  core::Params params_;
  core::Derived derived_;
  proc::IngestMode ingest_;
  proc::ArrivalArena arena_;    ///< dense per-neighbor DIFF slots (kArena)
  std::vector<double> diff_;    ///< legacy id-indexed DIFF (kLegacy)
  std::vector<double> values_;  ///< legacy per-round neighbor-view gather
  double label_ = 0.0;
  std::int32_t round_ = 0;
  double last_adj_ = 0.0;
  bool started_ = false;
};

/// Lamport & Melliar-Smith's interactive convergence algorithm CNV [LM]:
/// the egocentric average.  Every estimate farther than `delta_max` from
/// the caller's own clock (difference 0) is replaced by 0, then all n values
/// are averaged.  Agreement degrades linearly in n (about 2 n eps), the
/// shape EXP-COMPARE reproduces.
class InteractiveConvergenceProcess final : public RoundExchangeProcess {
 public:
  InteractiveConvergenceProcess(
      core::Params params, double delta_max,
      proc::IngestMode ingest = proc::IngestMode::kArena)
      : RoundExchangeProcess(params, ingest), delta_max_(delta_max) {}

 protected:
  [[nodiscard]] double compute_adjustment(
      const std::vector<double>& diffs) const override;

 private:
  double delta_max_;
};

/// Mahaney & Schneider's inexact-agreement round [MS]: a value is acceptable
/// if at least n-f of the values lie within tau of it; unacceptable or
/// missing values are replaced by the caller's own (0); the mean of the
/// result is the adjustment.  Degrades gracefully past f faults.
class MahaneySchneiderProcess final : public RoundExchangeProcess {
 public:
  MahaneySchneiderProcess(core::Params params, double tau,
                          proc::IngestMode ingest = proc::IngestMode::kArena)
      : RoundExchangeProcess(params, ingest), tau_(tau) {}

 protected:
  [[nodiscard]] double compute_adjustment(
      const std::vector<double>& diffs) const override;

 private:
  double tau_;
};

/// Ablation: the plain mean with no discarding at all.  A single Byzantine
/// process can drag the whole system arbitrarily — the reason reduce()
/// exists.
class PlainMeanProcess final : public RoundExchangeProcess {
 public:
  explicit PlainMeanProcess(core::Params params,
                            proc::IngestMode ingest = proc::IngestMode::kArena)
      : RoundExchangeProcess(params, ingest) {}

 protected:
  [[nodiscard]] double compute_adjustment(
      const std::vector<double>& diffs) const override;
};

}  // namespace wlsync::baselines
