#pragma once
// Halpern, Simons, Strong & Dolev's clock synchronization [HSSD]
// (Section 10).
//
// The schedule ET_i = T0 + iP is agreed in advance.  When a process' logical
// clock reaches ET_i it signs and broadcasts <round i>; a process receiving
// a chain with k distinct signatures accepts it if the chain is *timely* —
// its clock reads at least ET_i - k(1+rho)(delta+eps), i.e. the chain could
// genuinely have taken k hops — whereupon it advances its clock to ET_i
// (never backwards), appends its signature, and relays.  Signatures replace
// the n > 3f requirement: any number of process faults is tolerated as long
// as nonfaulty processes stay connected.
//
// Relays go through Context::broadcast and therefore follow the configured
// net::Topology: on a sparse exchange graph the signature chains hop across
// the diameter exactly as [HSSD] intends (connectivity of the nonfaulty
// subgraph is the algorithm's only network requirement), and the timeliness
// test already charges k hops for a k-signature chain.
//
// Signature simulation: a chain is (round label, signature count) in
// (value, aux).  Unforgeability is an *assumption* of [HSSD]; adversaries
// in HSSD experiments are therefore restricted to omission-style faults
// (silent/crash) plus rushing — signing and broadcasting one's own chain
// early — which is precisely the attack Section 10 says makes "the
// nonfaulty [processes] speed up their clocks."
//
// Section 10 comparison points reproduced in tests/benches: agreement about
// delta + eps; adjustment about (f+1)(delta+eps); tolerates f >= n/3 (e.g.
// 2 silent of 4, impossible for the signature-free algorithms); validity
// slope inflated by rushing faults.

#include <cstdint>

#include "core/params.h"
#include "proc/process.h"

namespace wlsync::baselines {

inline constexpr std::int32_t kSignedTag = 4;

class HssdProcess final : public proc::Process {
 public:
  explicit HssdProcess(core::Params params) : params_(params) {}

  void on_start(proc::Context& ctx) override;
  void on_timer(proc::Context& ctx, std::int32_t tag) override;
  void on_message(proc::Context& ctx, const sim::Message& m) override;

  [[nodiscard]] std::int32_t round() const noexcept { return last_accepted_; }
  [[nodiscard]] double last_adjustment() const noexcept { return last_adj_; }

 private:
  void accept(proc::Context& ctx, std::int32_t round, std::int32_t signatures);

  core::Params params_;
  std::int32_t last_accepted_ = 0;  ///< highest round accepted/begun
  double last_adj_ = 0.0;
  bool started_ = false;
};

}  // namespace wlsync::baselines
