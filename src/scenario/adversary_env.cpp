#include "scenario/adversary_env.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "net/topology.h"
#include "proc/adversaries.h"

namespace wlsync::scenario {

namespace {

/// Resolved Byzantine roster size of a spec (mirrors Experiment::build).
std::int32_t resolved_fault_count(const analysis::RunSpec& spec) {
  if (!spec.fault_mix.empty()) {
    std::int32_t total = 0;
    for (const auto& entry : spec.fault_mix) total += entry.count;
    return total;
  }
  return spec.fault != analysis::FaultKind::kNone ? spec.fault_count : 0;
}

bool has_twofaced(const analysis::RunSpec& spec) {
  if (!spec.fault_mix.empty()) {
    for (const auto& entry : spec.fault_mix) {
      if (entry.kind == analysis::FaultKind::kTwoFaced && entry.count > 0) {
        return true;
      }
    }
    return false;
  }
  return spec.fault == analysis::FaultKind::kTwoFaced && spec.fault_count > 0;
}

/// Index of the latest round whose boundary skew has flushed (round r
/// flushes when the first begin of round r+1 arrives); -1 when none has.
std::int32_t last_measured_round(const std::vector<double>& skews) {
  for (auto r = static_cast<std::int32_t>(skews.size()) - 1; r >= 0; --r) {
    if (!std::isnan(skews[static_cast<std::size_t>(r)])) return r;
  }
  return -1;
}

}  // namespace

AdversaryEnv::AdversaryEnv(Config config) : config_(std::move(config)) {
  if (config_.spec.mode != analysis::RunMode::kMaintenance) {
    throw std::invalid_argument(
        "AdversaryEnv: only kMaintenance scenarios have a round loop to "
        "adapt against");
  }
  if (!has_twofaced(config_.spec)) {
    throw std::invalid_argument(
        "AdversaryEnv: the spec has no two-faced adversary to re-tune");
  }
  if (config_.warmup_rounds < 0 || config_.rounds_per_step < 1) {
    throw std::invalid_argument(
        "AdversaryEnv: need warmup_rounds >= 0 and rounds_per_step >= 1");
  }
}

AdversaryEnv::~AdversaryEnv() {
  // The observer dies with this object; a simulator that is torn down
  // afterwards must not hold the stale pointer.
  if (live_ && exp_) exp_->simulator().set_observer(nullptr);
}

AdversaryObservation AdversaryEnv::reset() {
  if (live_ && exp_) exp_->simulator().set_observer(nullptr);
  exp_ = std::make_unique<analysis::Experiment>(config_.spec);
  // Attach before any event fires: the round stream must see round 0.
  observer_ = std::make_unique<analysis::StreamingObserver>(
      exp_->simulator(), exp_->make_observe_spec());
  exp_->simulator().set_observer(observer_.get());
  horizon_ = exp_->horizon();
  steps_ = 0;
  live_ = true;
  advance_rounds(config_.warmup_rounds);
  return observe_now();
}

void AdversaryEnv::apply(const AdversaryAction& action) {
  sim::Simulator& sim = exp_->simulator();
  for (std::int32_t id = 0; id < sim.process_count(); ++id) {
    if (!sim.is_faulty(id)) continue;
    if (auto* adv = dynamic_cast<proc::TwoFacedAdversary*>(&sim.process(id))) {
      adv->retune(action.early_frac, action.late_frac);
    }
  }
}

void AdversaryEnv::advance_rounds(std::int32_t count) {
  sim::Simulator& sim = exp_->simulator();
  const double P = config_.spec.params.P;
  const std::int32_t target = last_measured_round(observer_->round_skews()) +
                              count;
  // P-sized chunks, like run_reintegration's rejoin poll: enough progress
  // per run_until to be cheap, fine-grained enough to stop on the target
  // round promptly.
  while (last_measured_round(observer_->round_skews()) < target &&
         sim.current_time() < horizon_) {
    sim.run_until(std::min(sim.current_time() + P, horizon_));
  }
}

AdversaryObservation AdversaryEnv::observe_now() {
  const std::vector<double>& skews = observer_->round_skews();
  AdversaryObservation obs;
  obs.round = last_measured_round(skews);
  if (obs.round >= 0) {
    obs.round_skew = skews[static_cast<std::size_t>(obs.round)];
    double sum = 0.0;
    std::int32_t counted = 0;
    for (std::int32_t r = obs.round; r >= 0 && counted < 4; --r) {
      const double s = skews[static_cast<std::size_t>(r)];
      if (std::isnan(s)) continue;
      sum += s;
      ++counted;
    }
    obs.mean_recent_skew = counted > 0 ? sum / counted : 0.0;
  }
  obs.done = obs.round >= config_.spec.rounds - 1 ||
             exp_->simulator().current_time() >= horizon_;
  return obs;
}

AdversaryObservation AdversaryEnv::step(const AdversaryAction& action) {
  if (!live_) {
    throw std::logic_error("AdversaryEnv::step: call reset() first");
  }
  apply(action);
  advance_rounds(config_.rounds_per_step);
  ++steps_;
  return observe_now();
}

double AdversaryEnv::finish() {
  if (!live_) {
    throw std::logic_error("AdversaryEnv::finish: call reset() first");
  }
  sim::Simulator& sim = exp_->simulator();
  sim.run_until(horizon_);
  const analysis::StreamingSummary streamed =
      observer_->finalize(sim.current_time());
  sim.set_observer(nullptr);
  live_ = false;
  return streamed.skew.max_skew;
}

// ----------------------------------------------------- greedy baseline ---

GreedyResult run_greedy_adversary(const analysis::RunSpec& base) {
  GreedyResult out;
  const std::int32_t fault_count = resolved_fault_count(base);
  if (fault_count < 1) {
    throw std::invalid_argument(
        "run_greedy_adversary: the spec places no faults");
  }

  // Phase 1 — best static placement: evaluate each structural placement
  // policy with a full static run (default face fractions) and keep the
  // one that hurts the honest processes most.
  const net::Topology topo =
      net::build_topology(base.topology, base.params.n);
  const proc::PlacementKind kinds[] = {
      proc::PlacementKind::kTrailing, proc::PlacementKind::kArticulation,
      proc::PlacementKind::kBridge, proc::PlacementKind::kMaxDegree,
      proc::PlacementKind::kAntipodal};
  std::set<std::vector<std::int32_t>> seen;  // policies often coincide
  bool first = true;
  for (const proc::PlacementKind kind : kinds) {
    std::vector<std::int32_t> ids =
        proc::place_faults(topo, kind, fault_count, base.seed);
    std::vector<std::int32_t> key = ids;
    std::sort(key.begin(), key.end());
    if (!seen.insert(std::move(key)).second) continue;
    analysis::RunSpec spec = base;
    spec.placement_ids = ids;
    const analysis::RunResult r = analysis::run(spec);
    if (first || r.gamma_measured > out.static_skew) {
      first = false;
      out.static_skew = r.gamma_measured;
      out.best_placement = kind;
      out.placement_ids = std::move(ids);
    }
  }

  // Phase 2 — adaptive episode on that placement: deterministic hill-climb
  // on the face fractions, one perturbation per step, kept exactly when
  // the short-window round-skew mean worsened for the honest processes.
  AdversaryEnv::Config env_config;
  env_config.spec = base;
  env_config.spec.placement_ids = out.placement_ids;
  AdversaryEnv env(std::move(env_config));

  AdversaryAction current;  // the build()'s default fractions
  AdversaryObservation obs = env.reset();
  double best_window = obs.mean_recent_skew;
  constexpr double kStep = 0.08;
  constexpr double kCycle[4][2] = {
      {+kStep, 0.0}, {-kStep, 0.0}, {0.0, +kStep}, {0.0, -kStep}};
  std::size_t ci = 0;
  while (!obs.done) {
    AdversaryAction trial = current;
    trial.early_frac =
        std::clamp(trial.early_frac + kCycle[ci][0], 0.0, 1.0);
    trial.late_frac = std::clamp(trial.late_frac + kCycle[ci][1], 0.0, 1.0);
    ci = (ci + 1) % 4;
    obs = env.step(trial);
    if (obs.mean_recent_skew > best_window) {
      best_window = obs.mean_recent_skew;
      current = trial;
    }
  }
  out.best_action = current;
  out.env_steps = env.steps();
  out.adaptive_skew = env.finish();
  return out;
}

}  // namespace wlsync::scenario
