#pragma once
// Adaptive-adversary loop: a gym-style step interface over a maintenance
// experiment.
//
// The static harness fixes the Byzantine strategy before the run; this
// layer closes the loop.  An AdversaryEnv owns one live experiment and
// exposes it one round (or a few) at a time: after each step the policy
// observes the honest round-boundary skew (from the streaming observer's
// round stream — no post-hoc scan, the run is still in flight) and
// re-tunes the two-faced adversaries' face positions for the NEXT strike
// (proc::TwoFacedAdversary::retune).  Everything stays deterministic: the
// simulator's event order is untouched, a retune only changes the real
// times the next round's forged faces fire at, and the same (spec, action
// sequence) always reproduces the same run bit for bit.
//
// run_greedy_adversary is the baseline policy the README measures: pick
// the structurally worst static placement (the positional placement
// policies of proc/placement.h evaluated by a full static run each), then
// hill-climb the face fractions inside one adaptive episode, keeping a
// perturbation exactly when the observed per-round skew worsened.  It is
// intentionally simple — the point of the env is that *any* policy can be
// plugged into step(); the greedy one demonstrates the loop beats the best
// static configuration it started from.

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/observe.h"
#include "proc/placement.h"

namespace wlsync::scenario {

/// What the policy controls: the in-span positions of the two forged
/// faces.  Applied to every two-faced adversary before the next round's
/// strike is scheduled; fractions are clamped to [0, 1] (the legal in-span
/// window — out-of-span arrivals are clipped by reduce() and wasted).
struct AdversaryAction {
  double early_frac = 0.08;
  double late_frac = 0.92;
};

/// What the policy sees after a step: the latest round whose boundary skew
/// has been measured, that skew, and a short-window mean for smoothing.
struct AdversaryObservation {
  std::int32_t round = -1;       ///< latest measured round (-1: none yet)
  double round_skew = 0.0;       ///< honest skew at that round's last begin
  double mean_recent_skew = 0.0; ///< mean over the last <= 4 measured rounds
  bool done = false;             ///< the episode reached its round budget
};

class AdversaryEnv {
 public:
  struct Config {
    /// The scenario under attack.  Must be kMaintenance with at least one
    /// kTwoFaced fault; the env drives the reference event engine directly
    /// (the fast path batches whole rounds and never yields mid-episode).
    analysis::RunSpec spec;
    /// Rounds to run before the first step() (lets the system settle so
    /// early observations measure the attack, not the A4 wake-up).
    std::int32_t warmup_rounds = 2;
    /// Rounds advanced per step() — the policy's reaction period.
    std::int32_t rounds_per_step = 1;
  };

  explicit AdversaryEnv(Config config);
  ~AdversaryEnv();

  AdversaryEnv(const AdversaryEnv&) = delete;
  AdversaryEnv& operator=(const AdversaryEnv&) = delete;

  /// (Re)builds the experiment, attaches the streaming observer before any
  /// event fires, runs the warmup rounds, and returns the first
  /// observation.  Callable again after finish() for a fresh episode.
  AdversaryObservation reset();

  /// Applies `action` to every two-faced adversary, advances
  /// rounds_per_step rounds, and returns the new observation.
  AdversaryObservation step(const AdversaryAction& action);

  /// Runs the episode to its horizon and returns the steady-state max
  /// honest skew (the same quantity RunResult::gamma_measured reports for
  /// a static run).  The env is inert afterwards until reset().
  double finish();

  /// Steps taken since the last reset.
  [[nodiscard]] std::int32_t steps() const noexcept { return steps_; }

 private:
  [[nodiscard]] AdversaryObservation observe_now();
  /// Advances until `count` more rounds have their boundary skew measured
  /// (or the horizon is reached).
  void advance_rounds(std::int32_t count);
  void apply(const AdversaryAction& action);

  Config config_;
  std::unique_ptr<analysis::Experiment> exp_;
  std::unique_ptr<analysis::StreamingObserver> observer_;
  double horizon_ = 0.0;
  std::int32_t steps_ = 0;
  bool live_ = false;
};

/// Result of the greedy baseline below.
struct GreedyResult {
  /// The placement policy whose static run hurt the honest processes most,
  /// and the ids it put the adversaries at.
  proc::PlacementKind best_placement = proc::PlacementKind::kTrailing;
  std::vector<std::int32_t> placement_ids;
  /// Steady-state max honest skew of the best STATIC configuration (that
  /// placement, default face fractions, no mid-run adaptation).
  double static_skew = 0.0;
  /// Steady-state max honest skew of the adaptive episode on the same
  /// placement — the number the env exists to push above static_skew.
  double adaptive_skew = 0.0;
  /// The face fractions the hill-climb settled on.
  AdversaryAction best_action;
  std::int32_t env_steps = 0;
};

/// The greedy baseline policy: evaluate the positional placements
/// (trailing, articulation, bridge, max-degree, antipodal — trailing
/// included because the id-range layout is often the strongest on
/// clustered graphs) with full static runs, take the worst-for-honest
/// one, then hill-climb (early_frac, late_frac)
/// inside one adaptive episode — a deterministic perturbation cycle
/// (+d, -d on each axis in turn), keeping a move exactly when the observed
/// round-skew window mean increased.  Deterministic end to end: same
/// `base` spec, same result.
[[nodiscard]] GreedyResult run_greedy_adversary(const analysis::RunSpec& base);

}  // namespace wlsync::scenario
