#include "multiset/multiset_ops.h"

#include <algorithm>
#include <stdexcept>

namespace wlsync::ms {

namespace {
void require(bool condition, const char* what) {
  if (!condition) throw std::invalid_argument(what);
}
}  // namespace

double max_of(std::span<const double> u) {
  require(!u.empty(), "multiset: max_of on empty multiset");
  return *std::max_element(u.begin(), u.end());
}

double min_of(std::span<const double> u) {
  require(!u.empty(), "multiset: min_of on empty multiset");
  return *std::min_element(u.begin(), u.end());
}

double diam(std::span<const double> u) { return max_of(u) - min_of(u); }

double mid(std::span<const double> u) { return 0.5 * (max_of(u) + min_of(u)); }

double mean(std::span<const double> u) {
  require(!u.empty(), "multiset: mean of empty multiset");
  double sum = 0.0;
  for (double x : u) sum += x;
  return sum / static_cast<double>(u.size());
}

Multiset reduce(std::span<const double> u, std::size_t f) {
  require(u.size() >= 2 * f + 1, "multiset: reduce needs |U| >= 2f+1");
  Multiset sorted(u.begin(), u.end());
  std::sort(sorted.begin(), sorted.end());
  return Multiset(sorted.begin() + static_cast<std::ptrdiff_t>(f),
                  sorted.end() - static_cast<std::ptrdiff_t>(f));
}

double fault_tolerant_midpoint(std::span<const double> u, std::size_t f) {
  const Multiset kept = reduce(u, f);
  return mid(kept);
}

double fault_tolerant_mean(std::span<const double> u, std::size_t f) {
  const Multiset kept = reduce(u, f);
  return mean(kept);
}

Multiset drop_min(std::span<const double> u) {
  require(!u.empty(), "multiset: drop_min on empty multiset");
  Multiset out(u.begin(), u.end());
  out.erase(std::min_element(out.begin(), out.end()));
  return out;
}

Multiset drop_max(std::span<const double> u) {
  require(!u.empty(), "multiset: drop_max on empty multiset");
  Multiset out(u.begin(), u.end());
  out.erase(std::max_element(out.begin(), out.end()));
  return out;
}

std::size_t x_distance(std::span<const double> u, std::span<const double> v,
                       double x) {
  if (u.size() > v.size()) return x_distance(v, u, x);
  Multiset su(u.begin(), u.end());
  Multiset sv(v.begin(), v.end());
  std::sort(su.begin(), su.end());
  std::sort(sv.begin(), sv.end());
  // Greedy maximum matching on sorted sequences: each u is compatible with a
  // contiguous run of v (|u - v| <= x), so matching each u in order to the
  // earliest compatible unmatched v is optimal (exchange argument).
  std::size_t matched = 0;
  std::size_t j = 0;
  for (double uu : su) {
    while (j < sv.size() && sv[j] < uu - x) ++j;
    if (j < sv.size() && sv[j] <= uu + x) {
      ++matched;
      ++j;
    }
  }
  return su.size() - matched;
}

bool x_covers(std::span<const double> w, std::span<const double> u, double x) {
  return w.size() <= u.size() && x_distance(w, u, x) == 0;
}

}  // namespace wlsync::ms
