#pragma once
// Multiset operations from the paper's Appendix.
//
// The fault-tolerant averaging function mid(reduce(.)) is "the heart of the
// algorithm" (Section 4.1): reduce removes the f largest and f smallest
// elements, and mid takes the midpoint of the surviving range.  The Appendix
// proves the properties (Lemmas 21-24) that make a single round halve the
// clock separation; this module implements every Appendix definition,
// including the x-distance d_x(U, V), so those lemmas can be tested as
// executable properties.

#include <cstddef>
#include <span>
#include <vector>

namespace wlsync::ms {

/// A multiset of reals, by value.  Order of elements is irrelevant to all
/// operations; functions sort copies internally where needed.
using Multiset = std::vector<double>;

/// Largest element.  Precondition: non-empty.
[[nodiscard]] double max_of(std::span<const double> u);

/// Smallest element.  Precondition: non-empty.
[[nodiscard]] double min_of(std::span<const double> u);

/// diam(U) = max(U) - min(U).  Precondition: non-empty.
[[nodiscard]] double diam(std::span<const double> u);

/// mid(U) = (max(U) + min(U)) / 2.  Precondition: non-empty.
[[nodiscard]] double mid(std::span<const double> u);

/// Arithmetic mean.  Precondition: non-empty.
[[nodiscard]] double mean(std::span<const double> u);

/// reduce(U): removes the f largest and f smallest elements.
/// Precondition: |U| >= 2f + 1 (as in the paper, which requires
/// |U| >= 2f+1 for reduce to be defined).
[[nodiscard]] Multiset reduce(std::span<const double> u, std::size_t f);

/// The paper's averaging function: mid(reduce(U)).  Halves the error per
/// round (Lemma 9 / Lemma 24).
[[nodiscard]] double fault_tolerant_midpoint(std::span<const double> u, std::size_t f);

/// Section 7 variant: mean(reduce(U)).  Convergence rate ~ f/(n-2f), so it
/// beats the midpoint when n >> f; error approaches ~2*epsilon.
[[nodiscard]] double fault_tolerant_mean(std::span<const double> u, std::size_t f);

/// s(U): deletes one occurrence of min(U).  l(U): deletes one occurrence of
/// max(U).  Preconditions: non-empty.
[[nodiscard]] Multiset drop_min(std::span<const double> u);
[[nodiscard]] Multiset drop_max(std::span<const double> u);

/// d_x(U, V): the x-distance between multisets (Appendix).  With |U| <= |V|,
/// it is the minimum over injections c : U -> V of the number of u in U with
/// |u - c(u)| > x; equivalently |U| minus the maximum number of x-pairs.
/// If |U| > |V| the arguments are swapped (the definition requires
/// |U| <= |V|; distance is symmetric in the pairing sense used by the paper).
///
/// Computed exactly: compatibility |u - v| <= x on sorted sequences forms an
/// interval bigraph, for which a two-pointer greedy yields maximum matching.
[[nodiscard]] std::size_t x_distance(std::span<const double> u,
                                     std::span<const double> v, double x);

/// Convenience for tests: true iff d_x(W, U) == 0, i.e. every element of W
/// can be x-paired with a distinct element of U.
[[nodiscard]] bool x_covers(std::span<const double> w, std::span<const double> u,
                            double x);

}  // namespace wlsync::ms
