#pragma once
// Minimal command-line flag parsing for bench/example binaries.
// Supports `--name=value` and `--name value`; unknown flags are reported.

#include <cstdint>
#include <map>
#include <string>

namespace wlsync::util {

class Flags {
 public:
  /// Parses argv; on malformed input prints a message and keeps going.
  Flags(int argc, char** argv);

  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] std::string get_string(const std::string& name, std::string fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;
  [[nodiscard]] bool has(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace wlsync::util
