#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace wlsync::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << "  ";
  for (std::size_t i = 2; i < total; ++i) out << '-';
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string fmt_sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
  return buf;
}

}  // namespace wlsync::util
