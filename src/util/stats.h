#pragma once
// Small statistics helpers used by the analysis and benchmark layers.

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace wlsync::util {

/// Online accumulator for min / max / mean / variance (Welford).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation.
/// Copies and sorts internally; empty input returns NaN.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Least-squares line fit y = slope*x + intercept over paired samples.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination; 1.0 for a perfect fit.
  double r2 = 0.0;
};

[[nodiscard]] LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Geometric-mean of successive ratios values[i+1]/values[i]; used to
/// estimate per-round convergence factors (e.g., the paper's 1/2 halving).
/// Entries where the denominator is below `floor` are skipped.
[[nodiscard]] double mean_contraction(std::span<const double> values, double floor);

}  // namespace wlsync::util
