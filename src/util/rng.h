#pragma once
// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component of the library (drift models, delay models,
// adversaries, workload generators) draws from an Rng seeded explicitly, so
// that any execution is exactly reproducible from its seed.  We implement
// splitmix64 (for seeding / stream derivation) and xoshiro256** (the main
// generator) rather than relying on std::mt19937, whose streams are not
// guaranteed identical across standard-library implementations.

#include <array>
#include <cstdint>
#include <string_view>

namespace wlsync::util {

/// splitmix64 step: advances `state` and returns the next 64-bit output.
/// Used to expand a single seed into generator state and derive substreams.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator by expanding `seed` through splitmix64.
  explicit constexpr Rng(std::uint64_t seed = 0) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept {
    // Unbiased via rejection (Lemire-style threshold omitted: simulation use).
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Derives an independent child generator; `tag` separates substreams.
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept {
    std::uint64_t sm = (*this)() ^ (0xA24BAED4963EE407ULL + tag * 0x9E3779B97F4A7C15ULL);
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64_next(sm);
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stable 64-bit hash of a string, for deriving seeds from names (FNV-1a).
[[nodiscard]] constexpr std::uint64_t hash_name(std::string_view name) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace wlsync::util
