#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace wlsync::util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "flags: ignoring positional argument '%s'\n", argv[i]);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";  // bare flag
    }
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

std::string Flags::get_string(const std::string& name, std::string fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(fallback) : it->second;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Flags::has(const std::string& name) const { return values_.contains(name); }

}  // namespace wlsync::util
