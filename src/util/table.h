#pragma once
// Aligned ASCII table printing for the benchmark harness and examples.
// Every experiment binary prints the rows/series the paper reports through
// this printer, so output format is uniform across the repository.

#include <iosfwd>
#include <string>
#include <vector>

namespace wlsync::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; cells are pre-formatted strings.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule to `out`.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (general format).
[[nodiscard]] std::string fmt(double value, int digits = 5);

/// Formats a double in scientific notation with `digits` after the point.
[[nodiscard]] std::string fmt_sci(double value, int digits = 3);

}  // namespace wlsync::util
