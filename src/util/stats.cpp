#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace wlsync::util {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  LineFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double mean_contraction(std::span<const double> values, double floor) {
  double log_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    if (values[i] > floor && values[i + 1] > 0.0) {
      log_sum += std::log(values[i + 1] / values[i]);
      ++count;
    }
  }
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  return std::exp(log_sum / static_cast<double>(count));
}

}  // namespace wlsync::util
