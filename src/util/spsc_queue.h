#pragma once
// Chunked single-producer / single-consumer queue for the PDES overlapped
// channel drain (engine/pdes.h).
//
// Each (src, dest) lane pair owns one queue: the producer is the sending
// lane's worker thread (pushing mid-epoch, while it executes its window),
// the consumer is the receiving lane's worker (polling mid-epoch and at
// epoch boundaries).  The conservative lookahead guarantees every pushed
// item is scheduled strictly beyond the consumer's current window, so the
// consumer may drain at ANY point of its execution — that is what lets the
// engine run send, drain and execute as one overlapped phase with a single
// barrier per epoch.
//
// Layout: a singly-linked list of fixed-size blocks.
//   * The producer appends into the tail block and publishes each item by a
//     release store of the block's count; a full block links a successor
//     (recycled from a producer-local freelist when possible) with a
//     release store of `next`.
//   * The consumer reads `count` with acquire, consumes items below it, and
//     follows `next` once a block is exhausted, stashing spent blocks on a
//     consumer-local list.
//   * recycle() moves spent blocks back to the freelist.  It is QUIESCENT:
//     legal only while neither side is active — the engine calls it from
//     the epoch barrier's completion, which runs single-threaded while all
//     workers block, so steady-state epochs allocate nothing
//     (bench_micro --smoke gates this).
//   * scan_pending() visits items pushed but not yet consumed, also
//     quiescent-only; the barrier fold uses it to account in-flight events
//     in the termination time and the adaptive window.
//
// No CAS, no shared indices: the only cross-thread traffic is the
// release/acquire pair on `count`/`next`, one cache line per active block.

#include <atomic>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wlsync::util {

template <typename T, std::size_t kBlockItems = 128>
class SpscQueue {
 public:
  SpscQueue() : head_(new Block()), tail_(head_) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  ~SpscQueue() {
    Block* b = head_;
    while (b != nullptr) {
      Block* next = b->next.load(std::memory_order_relaxed);
      delete b;
      b = next;
    }
    for (Block* s : spent_) delete s;
    for (Block* f : free_) delete f;
  }

  /// Producer only.  Publishes `item` with one release store; links a fresh
  /// (or recycled) block first when the tail block is full.
  void push(const T& item) {
    Block* b = tail_;
    std::uint32_t count = b->count.load(std::memory_order_relaxed);
    if (count == kBlockItems) {
      Block* next = take_free();
      // `next` is fully reset before this release store, so the consumer's
      // acquire load of `next` observes count = 0 / next = nullptr.
      b->next.store(next, std::memory_order_release);
      tail_ = next;
      b = next;
      count = 0;
    }
    b->items[count] = item;
    b->count.store(count + 1, std::memory_order_release);
  }

  /// Consumer only: true when nothing is currently available.  (The
  /// producer may be mid-push; this is a snapshot, which is all the
  /// periodic poll needs.)
  [[nodiscard]] bool empty() const {
    if (head_pos_ < head_->count.load(std::memory_order_acquire)) return false;
    return head_pos_ < kBlockItems ||
           head_->next.load(std::memory_order_acquire) == nullptr;
  }

  /// Consumer only.  Invokes `f(item)` on everything available at call
  /// time, in push order.  Returns the number consumed.
  template <typename F>
  std::size_t drain(F&& f) {
    std::size_t consumed = 0;
    for (;;) {
      const std::uint32_t count = head_->count.load(std::memory_order_acquire);
      while (head_pos_ < count) {
        f(head_->items[head_pos_++]);
        ++consumed;
      }
      if (count < kBlockItems) return consumed;
      Block* next = head_->next.load(std::memory_order_acquire);
      if (next == nullptr) return consumed;
      spent_.push_back(head_);
      head_ = next;
      head_pos_ = 0;
    }
  }

  /// QUIESCENT (no concurrent producer/consumer; the engine calls it from
  /// the barrier completion).  Visits every pushed-but-unconsumed item in
  /// push order without consuming.
  template <typename F>
  void scan_pending(F&& f) const {
    const Block* b = head_;
    std::uint32_t pos = head_pos_;
    while (b != nullptr) {
      const std::uint32_t count = b->count.load(std::memory_order_relaxed);
      for (std::uint32_t i = pos; i < count; ++i) f(b->items[i]);
      b = b->next.load(std::memory_order_relaxed);
      pos = 0;
    }
  }

  /// QUIESCENT.  Returns consumer-spent blocks to the producer freelist,
  /// reset for reuse — the steady state allocates nothing.
  void recycle() {
    for (Block* b : spent_) {
      b->count.store(0, std::memory_order_relaxed);
      b->next.store(nullptr, std::memory_order_relaxed);
      free_.push_back(b);
    }
    spent_.clear();
  }

 private:
  struct Block {
    std::atomic<std::uint32_t> count{0};
    std::atomic<Block*> next{nullptr};
    std::array<T, kBlockItems> items;
  };

  Block* take_free() {
    if (free_.empty()) return new Block();
    Block* b = free_.back();
    free_.pop_back();
    return b;
  }

  // Consumer-owned cursor vs producer-owned tail on separate cache lines so
  // the two sides never false-share the queue header.
  alignas(64) Block* head_;
  std::uint32_t head_pos_ = 0;
  std::vector<Block*> spent_;  ///< consumer-exhausted, awaiting recycle()
  alignas(64) Block* tail_;
  std::vector<Block*> free_;  ///< reset blocks the producer may relink
};

}  // namespace wlsync::util
