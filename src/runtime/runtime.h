#pragma once
// Real-thread runtime (Section 9.3).
//
// The paper's algorithm was implemented in 1986 on Suns over an Ethernet;
// the hard part was "interacting with the operating system and the network,
// and trying to satisfy the assumptions of the model".  This module
// re-creates those conditions in-process: each node runs on its own OS
// thread, physical clocks are steady_clock readings scaled by a per-node
// drift factor, and a router thread delivers messages after a randomized
// latency in [delta-eps, delta+eps] (OS scheduling jitter plays the role of
// additional uncertainty, so eps should be chosen generously).
//
// Crucially the *same* core::WelchLynchProcess object used by the
// deterministic simulator runs here, driven through a real-time Context —
// the algorithm code is identical; only the world differs.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "core/welch_lynch.h"
#include "net/topology.h"
#include "proc/process.h"
#include "util/rng.h"

namespace wlsync::rt {

using SteadyClock = std::chrono::steady_clock;
using TimePoint = SteadyClock::time_point;

/// Physical clock: reads offset + rate * (steady seconds since epoch).
class DriftedClock {
 public:
  DriftedClock(double offset, double rate, TimePoint epoch)
      : offset_(offset), rate_(rate), epoch_(epoch) {}

  [[nodiscard]] double now() const {
    const std::chrono::duration<double> elapsed = SteadyClock::now() - epoch_;
    return offset_ + rate_ * elapsed.count();
  }

  /// Steady time point at which this clock will read `clock_time`.
  [[nodiscard]] TimePoint when(double clock_time) const {
    const double seconds = (clock_time - offset_) / rate_;
    return epoch_ + std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(seconds));
  }

 private:
  double offset_;
  double rate_;
  TimePoint epoch_;
};

struct RtMessage {
  std::int32_t from = -1;
  std::int32_t tag = 0;
  double value = 0.0;
  std::int32_t aux = 0;
};

class Cluster;

/// Delivers messages to per-node inboxes after a randomized latency.
class Router {
 public:
  Router(std::int32_t n, double delta, double eps, std::uint64_t seed);
  ~Router();

  void start();
  void stop();
  void send(std::int32_t to, RtMessage msg);

  /// Blocks until a message for `id` arrives or `deadline` passes; returns
  /// true and fills `out` on message, false on timeout.
  bool wait_message(std::int32_t id, TimePoint deadline, RtMessage& out);

 private:
  struct Pending {
    TimePoint at;
    std::int32_t to;
    RtMessage msg;
    [[nodiscard]] bool operator>(const Pending& other) const {
      return at > other.at;
    }
  };

  void run();

  double delta_, eps_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
  std::vector<std::queue<RtMessage>> inboxes_;
  std::vector<std::unique_ptr<std::condition_variable>> inbox_cvs_;
  std::vector<std::unique_ptr<std::mutex>> inbox_mutexes_;
  util::Rng rng_;
  std::thread thread_;
  bool running_ = false;
};

/// One node: a thread driving a proc::Process through a real-time Context.
class Node {
 public:
  /// `start_physical` is the physical-clock reading at which on_start fires
  /// (so the logical clock reads T0 exactly then, per A4).  `neighbors` is
  /// the node's closed neighborhood in the exchange graph (sorted, itself
  /// included); broadcasts go to exactly these ids.
  Node(std::int32_t id, std::int32_t n, proc::ProcessPtr process,
       DriftedClock clock, double initial_corr, double start_physical,
       Router& router, std::vector<std::int32_t> neighbors);
  ~Node();

  void start();
  void stop();

  /// Thread-safe observable local time (for skew probes).
  [[nodiscard]] double local_time() const;
  [[nodiscard]] std::int32_t id() const noexcept { return id_; }

 private:
  friend class RtContext;
  void run();

  std::int32_t id_;
  std::int32_t n_;
  proc::ProcessPtr process_;
  DriftedClock clock_;
  Router& router_;
  std::vector<std::int32_t> neighbors_;
  double start_physical_;
  mutable std::mutex mutex_;
  double corr_;
  // (deadline, tag) timer heap, guarded by mutex_.
  std::priority_queue<std::pair<TimePoint, std::int32_t>,
                      std::vector<std::pair<TimePoint, std::int32_t>>,
                      std::greater<>>
      timers_;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

/// Assembles a live cluster of Welch-Lynch nodes and measures skew by
/// polling the nodes' observable local times.
class Cluster {
 public:
  struct Config {
    core::Params params;
    double drift_scale = 1.0;  ///< node i rate = 1 +- rho*drift_scale alternating
    std::uint64_t seed = 1;
    /// Exchange graph the live cluster's broadcasts route through; the
    /// default is the paper's full mesh.
    net::TopologySpec topology;
  };

  explicit Cluster(Config config);
  ~Cluster();

  /// Runs for `duration` wall seconds, sampling skew every `sample_every`;
  /// returns the maximum skew observed after `warmup`.
  [[nodiscard]] double run_and_measure(double duration, double warmup,
                                       double sample_every);

 private:
  Config config_;
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace wlsync::rt
