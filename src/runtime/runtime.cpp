#include "runtime/runtime.h"

#include <algorithm>

namespace wlsync::rt {

// ---------------------------------------------------------------- Router --

Router::Router(std::int32_t n, double delta, double eps, std::uint64_t seed)
    : delta_(delta), eps_(eps), rng_(seed) {
  inboxes_.resize(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    inbox_cvs_.push_back(std::make_unique<std::condition_variable>());
    inbox_mutexes_.push_back(std::make_unique<std::mutex>());
  }
}

Router::~Router() { stop(); }

void Router::start() {
  std::lock_guard lock(mutex_);
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void Router::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Router::send(std::int32_t to, RtMessage msg) {
  const double latency = [&] {
    std::lock_guard lock(mutex_);
    return rng_.uniform(delta_ - eps_, delta_ + eps_);
  }();
  const TimePoint at =
      SteadyClock::now() + std::chrono::duration_cast<SteadyClock::duration>(
                               std::chrono::duration<double>(latency));
  {
    std::lock_guard lock(mutex_);
    pending_.push({at, to, msg});
  }
  cv_.notify_all();
}

void Router::run() {
  std::unique_lock lock(mutex_);
  while (running_) {
    if (pending_.empty()) {
      cv_.wait(lock, [this] { return !running_ || !pending_.empty(); });
      continue;
    }
    const TimePoint next = pending_.top().at;
    if (SteadyClock::now() < next) {
      cv_.wait_until(lock, next);
      continue;
    }
    const Pending item = pending_.top();
    pending_.pop();
    lock.unlock();
    {
      const auto slot = static_cast<std::size_t>(item.to);
      std::lock_guard inbox_lock(*inbox_mutexes_[slot]);
      inboxes_[slot].push(item.msg);
    }
    inbox_cvs_[static_cast<std::size_t>(item.to)]->notify_all();
    lock.lock();
  }
}

bool Router::wait_message(std::int32_t id, TimePoint deadline, RtMessage& out) {
  const auto slot = static_cast<std::size_t>(id);
  std::unique_lock lock(*inbox_mutexes_[slot]);
  if (!inbox_cvs_[slot]->wait_until(lock, deadline, [&] {
        return !inboxes_[slot].empty();
      })) {
    return false;
  }
  out = inboxes_[slot].front();
  inboxes_[slot].pop();
  return true;
}

// ------------------------------------------------------------------ Node --

/// Real-time Context: the algorithm's window onto the live world.  Must be
/// used only from the node's own thread while it holds no inbox locks; the
/// node mutex guards corr_ and timers_.
class RtContext final : public proc::Context {
 public:
  explicit RtContext(Node& node) : node_(node) {}

  [[nodiscard]] std::int32_t id() const override { return node_.id_; }
  [[nodiscard]] std::int32_t process_count() const override { return node_.n_; }
  [[nodiscard]] std::span<const std::int32_t> neighbors() const override {
    return {node_.neighbors_.data(), node_.neighbors_.size()};
  }
  [[nodiscard]] double physical_time() const override {
    return node_.clock_.now();
  }
  [[nodiscard]] double local_time() const override {
    return physical_time() + corr();
  }
  [[nodiscard]] double corr() const override {
    std::lock_guard lock(node_.mutex_);
    return node_.corr_;
  }
  void add_corr(double adj) override {
    std::lock_guard lock(node_.mutex_);
    node_.corr_ += adj;
  }
  void add_corr_amortized(double adj, double) override {
    add_corr(adj);  // the runtime steps; slewing is a display concern
  }
  void broadcast(std::int32_t tag, double value, std::int32_t aux) override {
    for (std::int32_t to : node_.neighbors_) send(to, tag, value, aux);
  }
  void send(std::int32_t to, std::int32_t tag, double value,
            std::int32_t aux) override {
    node_.router_.send(to, RtMessage{node_.id_, tag, value, aux});
  }
  void set_timer(double logical_time, std::int32_t tag) override {
    double corr_now;
    {
      std::lock_guard lock(node_.mutex_);
      corr_now = node_.corr_;
    }
    set_timer_physical(logical_time - corr_now, tag);
  }
  void set_timer_physical(double physical_time, std::int32_t tag) override {
    const TimePoint at = node_.clock_.when(physical_time);
    if (at <= SteadyClock::now()) return;  // Section 2.2: past timers vanish
    std::lock_guard lock(node_.mutex_);
    node_.timers_.emplace(at, tag);
  }
  void annotate(const proc::Annotation&) override {}

 private:
  Node& node_;
};

Node::Node(std::int32_t id, std::int32_t n, proc::ProcessPtr process,
           DriftedClock clock, double initial_corr, double start_physical,
           Router& router, std::vector<std::int32_t> neighbors)
    : id_(id),
      n_(n),
      process_(std::move(process)),
      clock_(clock),
      router_(router),
      neighbors_(std::move(neighbors)),
      start_physical_(start_physical),
      corr_(initial_corr) {}

Node::~Node() { stop(); }

void Node::start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { run(); });
}

void Node::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
}

double Node::local_time() const {
  std::lock_guard lock(mutex_);
  return clock_.now() + corr_;
}

void Node::run() {
  RtContext ctx(*this);
  // A4: START fires when the logical clock reads T0, i.e. when the physical
  // clock reaches start_physical_.
  std::this_thread::sleep_until(clock_.when(start_physical_));
  process_->on_start(ctx);
  while (running_.load()) {
    TimePoint deadline = SteadyClock::now() + std::chrono::milliseconds(20);
    {
      std::lock_guard lock(mutex_);
      if (!timers_.empty()) deadline = std::min(deadline, timers_.top().first);
    }
    RtMessage msg;
    if (router_.wait_message(id_, deadline, msg)) {
      process_->on_message(ctx,
                           sim::make_app(msg.from, msg.tag, msg.value, msg.aux));
      continue;
    }
    // Timeout: fire every timer whose deadline has passed.
    for (;;) {
      std::pair<TimePoint, std::int32_t> due;
      {
        std::lock_guard lock(mutex_);
        if (timers_.empty() || timers_.top().first > SteadyClock::now()) break;
        due = timers_.top();
        timers_.pop();
      }
      process_->on_timer(ctx, due.second);
    }
  }
}

// --------------------------------------------------------------- Cluster --

Cluster::Cluster(Config config) : config_(std::move(config)) {
  const core::Params& p = config_.params;
  const net::Topology topology = net::build_topology(config_.topology, p.n);
  router_ = std::make_unique<Router>(p.n, p.delta, p.eps, config_.seed);
  router_->start();
  const TimePoint epoch = SteadyClock::now();
  util::Rng rng(config_.seed);
  for (std::int32_t id = 0; id < p.n; ++id) {
    // Alternate fast/slow extreme rates, scaled.
    const double rho = p.rho * config_.drift_scale;
    const double rate = (id % 2 == 0) ? 1.0 + rho : 1.0 / (1.0 + rho);
    DriftedClock clock(rng.uniform(0.0, 10.0), rate, epoch);
    // START within beta of each other, with logical clocks at T0 (A4):
    // node id wakes start_skew wall-seconds after a common lead-in.
    const double start_skew = rng.uniform(0.0, 0.5 * p.beta);
    const double lead_in = 0.05;  // let all threads spawn first
    const double phys_at_start = clock.now() + rate * (lead_in + start_skew);
    const double corr0 = p.T0 - phys_at_start;
    core::WelchLynchConfig wl_config;
    wl_config.params = p;
    const std::span<const std::int32_t> peers = topology.neighbors(id);
    nodes_.push_back(std::make_unique<Node>(
        id, p.n, std::make_unique<core::WelchLynchProcess>(wl_config), clock,
        corr0, phys_at_start, *router_,
        std::vector<std::int32_t>(peers.begin(), peers.end())));
  }
  for (auto& node : nodes_) node->start();
}

Cluster::~Cluster() {
  for (auto& node : nodes_) node->stop();
  router_->stop();
}

double Cluster::run_and_measure(double duration, double warmup,
                                double sample_every) {
  const TimePoint start = SteadyClock::now();
  const TimePoint warm = start + std::chrono::duration_cast<SteadyClock::duration>(
                                     std::chrono::duration<double>(warmup));
  const TimePoint end = start + std::chrono::duration_cast<SteadyClock::duration>(
                                    std::chrono::duration<double>(duration));
  double worst = 0.0;
  while (SteadyClock::now() < end) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sample_every));
    if (SteadyClock::now() < warm) continue;
    double lo = 1e300;
    double hi = -1e300;
    for (const auto& node : nodes_) {
      const double local = node->local_time();
      lo = std::min(lo, local);
      hi = std::max(hi, local);
    }
    worst = std::max(worst, hi - lo);
  }
  return worst;
}

}  // namespace wlsync::rt
